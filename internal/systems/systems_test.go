package systems

import (
	"testing"
	"time"

	"asyncio/internal/pfs"
	"asyncio/internal/vclock"
)

func TestSummitShape(t *testing.T) {
	clk := vclock.New()
	s := Summit(clk, 128)
	if s.Name != "summit" || s.RanksPerNode != 6 {
		t.Fatalf("identity wrong: %s %d", s.Name, s.RanksPerNode)
	}
	if s.Size() != 768 || s.Nodes() != 128 {
		t.Fatalf("size = %d nodes = %d", s.Size(), s.Nodes())
	}
	if s.PFS.Name() != "gpfs" {
		t.Fatalf("pfs = %s", s.PFS.Name())
	}
	if s.BurstBuffer != nil {
		t.Fatal("Summit should not expose a burst buffer tier")
	}
	if !s.NodeOf(0).HasGPU() || !s.NodeOf(0).HasSSD() {
		t.Fatal("Summit nodes must have GPUs and node-local SSDs")
	}
}

func TestCoriShape(t *testing.T) {
	clk := vclock.New()
	s := CoriHaswell(clk, 32)
	if s.Name != "cori-haswell" || s.RanksPerNode != 32 {
		t.Fatalf("identity wrong: %s %d", s.Name, s.RanksPerNode)
	}
	if s.Size() != 1024 {
		t.Fatalf("size = %d", s.Size())
	}
	if s.PFS.Name() != "lustre" {
		t.Fatalf("pfs = %s", s.PFS.Name())
	}
	if s.BurstBuffer == nil {
		t.Fatal("Cori must expose its burst buffer")
	}
	if s.NodeOf(0).HasGPU() || s.NodeOf(0).HasSSD() {
		t.Fatal("Haswell nodes have neither GPUs nor node-local SSDs")
	}
}

func TestAllocationBounds(t *testing.T) {
	for name, fn := range map[string]func(){
		"summit zero": func() { Summit(vclock.New(), 0) },
		"summit over": func() { Summit(vclock.New(), 4609) },
		"cori zero":   func() { CoriHaswell(vclock.New(), 0) },
		"cori over":   func() { CoriHaswell(vclock.New(), 2389) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestContentionOptionApplies(t *testing.T) {
	clk := vclock.New()
	plain := Summit(clk, 1)
	if plain.PFS.ContentionFactor() != 1 {
		t.Fatalf("uncontended factor = %v", plain.PFS.ContentionFactor())
	}
	contended := Summit(vclock.New(), 1, WithContention(7, 3))
	want := pfs.ContentionForDay(7, 3)
	if got := contended.PFS.ContentionFactor(); got != want {
		t.Fatalf("factor = %v, want %v", got, want)
	}
}

func TestVPICKneeAt128Nodes(t *testing.T) {
	// The §V-A1 calibration: the synchronous VPIC weak-scaling knee
	// (n·perFlow crossing the backend) sits at 768 ranks on Summit and
	// ~1024 ranks on Cori.
	summit := Summit(vclock.New(), 1).PFS.Config()
	if knee := summit.BackendPeak / summit.PerFlowBW; knee < 700 || knee > 830 {
		t.Fatalf("Summit knee at %.0f ranks, want ~768", knee)
	}
	cori := CoriHaswell(vclock.New(), 1).PFS.Config()
	if knee := cori.BackendPeak / cori.PerFlowBW; knee < 900 || knee > 1100 {
		t.Fatalf("Cori knee at %.0f ranks, want ~1008", knee)
	}
}

func TestCopyModels(t *testing.T) {
	clk := vclock.New()
	s := Summit(clk, 1)
	var dram, gpu, ssd time.Duration
	clk.Go("x", func(p *vclock.Proc) {
		start := p.Now()
		s.MemcpyModel(0)(p, 1<<30)
		dram = p.Now() - start
		start = p.Now()
		s.GPUCopyModel(0, true)(p, 1<<30)
		gpu = p.Now() - start
		start = p.Now()
		s.SSDStageModel(0)(p, 1<<30)
		ssd = p.Now() - start
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if dram <= 0 || gpu <= dram || ssd <= dram {
		t.Fatalf("staging costs out of order: dram=%v gpu=%v ssd=%v", dram, gpu, ssd)
	}
	// Nil-proc calls are no-ops.
	s.MemcpyModel(0)(nil, 1<<30)
	s.GPUCopyModel(0, false)(nil, 1<<30)
	s.SSDStageModel(0)(nil, 1<<30)
}
