package taskengine

import (
	"errors"
	"testing"
	"time"

	"asyncio/internal/vclock"
)

var errKill = errors.New("node crash")

// Kill completes queued tasks with the kill reason so waiters unwind
// instead of hanging, and the in-flight task dies mid-run.
func TestStreamKillFailsQueuedTasks(t *testing.T) {
	clk := vclock.New()
	e := New(clk)
	s := e.NewStream("bg")
	ran := 0
	first := s.Push("long", nil, func(p *vclock.Proc) error {
		ran++
		p.Sleep(time.Hour) // killed mid-sleep
		ran++
		return nil
	})
	second := s.Push("queued", nil, func(p *vclock.Proc) error {
		ran++
		return nil
	})
	var errs [2]error
	clk.Go("waiter", func(p *vclock.Proc) {
		p.Sleep(time.Second)
		s.Kill(errKill)
		errs[0] = first.Wait(p)
		errs[1] = second.Wait(p)
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (first task started, nothing after the kill)", ran)
	}
	for i, err := range errs {
		if !errors.Is(err, errKill) {
			t.Errorf("task %d error = %v, want %v", i, err, errKill)
		}
	}
}

// Push after Kill fails the task with the kill reason instead of the
// lifecycle panic: a crashed rank may still issue operations before it
// reaches its next blocking point.
func TestPushAfterKillFailsTask(t *testing.T) {
	clk := vclock.New()
	e := New(clk)
	s := e.NewStream("bg")
	s.Kill(errKill)
	task := s.Push("late", nil, func(p *vclock.Proc) error { return nil })
	var err error
	clk.Go("waiter", func(p *vclock.Proc) {
		err = task.Wait(p)
	})
	if werr := clk.Wait(); werr != nil {
		t.Fatal(werr)
	}
	if !errors.Is(err, errKill) {
		t.Fatalf("late push error = %v, want %v", err, errKill)
	}
}

// Kill is idempotent and Push after Shutdown still panics (the
// lifecycle bug remains a bug).
func TestKillIdempotentAndShutdownStillPanics(t *testing.T) {
	clk := vclock.New()
	e := New(clk)
	s := e.NewStream("bg")
	s.Kill(errKill)
	s.Kill(errors.New("other"))
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}

	clk2 := vclock.New()
	s2 := New(clk2).NewStream("bg2")
	s2.Shutdown()
	if err := clk2.Wait(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Push after Shutdown did not panic")
		}
	}()
	s2.Push("late", nil, func(p *vclock.Proc) error { return nil })
}

// After Kill, the engine's other streams keep working.
func TestKillIsolatedToOneStream(t *testing.T) {
	clk := vclock.New()
	e := New(clk)
	dead := e.NewStream("dead")
	live := e.NewStream("live")
	dead.Kill(errKill)
	ok := false
	task := live.Push("work", nil, func(p *vclock.Proc) error {
		ok = true
		return nil
	})
	clk.Go("waiter", func(p *vclock.Proc) {
		if err := task.Wait(p); err != nil {
			t.Errorf("live stream task failed: %v", err)
		}
	})
	live.Shutdown()
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("live stream task never ran")
	}
}
