package taskengine

import (
	"errors"
	"sync"
	"testing"
	"time"

	"asyncio/internal/vclock"
)

func TestTasksRunInFIFOOrder(t *testing.T) {
	clk := vclock.New()
	e := New(clk)
	s := e.NewStream("bg")
	var mu sync.Mutex
	var order []int
	for i := 0; i < 10; i++ {
		s.Push("t", nil, func(p *vclock.Proc) error {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return nil
		})
	}
	s.Shutdown()
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestTaskWaitReturnsError(t *testing.T) {
	clk := vclock.New()
	e := New(clk)
	s := e.NewStream("bg")
	sentinel := errors.New("io failed")
	task := s.Push("fail", nil, func(p *vclock.Proc) error { return sentinel })
	var got error
	clk.Go("waiter", func(p *vclock.Proc) {
		got = task.Wait(p)
		s.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got, sentinel) {
		t.Fatalf("Wait = %v", got)
	}
	if !task.Done() {
		t.Fatal("task not done")
	}
}

func TestTaskOverlapsWithForeground(t *testing.T) {
	// The core asynchronous-I/O property: a 10s background task pushed at
	// t=0 overlaps a 10s foreground sleep, so the waiter finishes at 10s,
	// not 20s.
	clk := vclock.New()
	e := New(clk)
	s := e.NewStream("bg")
	var end time.Duration
	clk.Go("fg", func(p *vclock.Proc) {
		task := s.Push("io", nil, func(q *vclock.Proc) error {
			q.Sleep(10 * time.Second)
			return nil
		})
		p.Sleep(10 * time.Second) // compute phase
		if err := task.Wait(p); err != nil {
			t.Error(err)
		}
		end = p.Now()
		s.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if end != 10*time.Second {
		t.Fatalf("end = %v, want 10s (full overlap)", end)
	}
}

func TestDependenciesAcrossStreams(t *testing.T) {
	clk := vclock.New()
	e := New(clk)
	s1 := e.NewStream("a")
	s2 := e.NewStream("b")
	var mu sync.Mutex
	var order []string
	slow := s1.Push("slow", nil, func(p *vclock.Proc) error {
		p.Sleep(5 * time.Second)
		mu.Lock()
		order = append(order, "slow")
		mu.Unlock()
		return nil
	})
	dep := s2.Push("dep", []*Task{slow}, func(p *vclock.Proc) error {
		mu.Lock()
		order = append(order, "dep")
		mu.Unlock()
		return nil
	})
	clk.Go("join", func(p *vclock.Proc) {
		if err := dep.Wait(p); err != nil {
			t.Error(err)
		}
		if p.Now() != 5*time.Second {
			t.Errorf("dep completed at %v, want 5s", p.Now())
		}
		e.ShutdownAll()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "slow" || order[1] != "dep" {
		t.Fatalf("order = %v", order)
	}
}

func TestShutdownDrainsQueue(t *testing.T) {
	clk := vclock.New()
	e := New(clk)
	s := e.NewStream("bg")
	ran := 0
	var mu sync.Mutex
	for i := 0; i < 5; i++ {
		s.Push("t", nil, func(p *vclock.Proc) error {
			p.Sleep(time.Second)
			mu.Lock()
			ran++
			mu.Unlock()
			return nil
		})
	}
	s.Shutdown()
	s.Shutdown() // idempotent
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if ran != 5 {
		t.Fatalf("ran = %d, want 5 (queue must drain before exit)", ran)
	}
}

func TestPushAfterShutdownPanics(t *testing.T) {
	clk := vclock.New()
	e := New(clk)
	s := e.NewStream("bg")
	s.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("Push after Shutdown did not panic")
		}
		_ = clk.Wait()
	}()
	s.Push("late", nil, func(*vclock.Proc) error { return nil })
}

func TestJoinWaitsForExit(t *testing.T) {
	clk := vclock.New()
	e := New(clk)
	s := e.NewStream("bg")
	s.Push("work", nil, func(p *vclock.Proc) error {
		p.Sleep(3 * time.Second)
		return nil
	})
	s.Shutdown()
	var joined time.Duration
	clk.Go("joiner", func(p *vclock.Proc) {
		s.Join(p)
		joined = p.Now()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if joined != 3*time.Second {
		t.Fatalf("Join returned at %v, want 3s", joined)
	}
}

func TestPendingCount(t *testing.T) {
	clk := vclock.New()
	e := New(clk)
	s := e.NewStream("bg")
	// Block the stream with a task waiting on an event, then queue more.
	gate := vclock.NewEvent(clk)
	s.Push("gate", nil, func(p *vclock.Proc) error {
		gate.Wait(p)
		return nil
	})
	clk.Go("driver", func(p *vclock.Proc) {
		p.Sleep(time.Second)
		s.Push("a", nil, func(*vclock.Proc) error { return nil })
		s.Push("b", nil, func(*vclock.Proc) error { return nil })
		if n := s.Pending(); n != 2 {
			t.Errorf("Pending = %d, want 2", n)
		}
		gate.Fire()
		s.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if n := s.Pending(); n != 0 {
		t.Fatalf("Pending after drain = %d", n)
	}
}

func TestManyStreamsConcurrent(t *testing.T) {
	clk := vclock.New()
	e := New(clk)
	const n = 32
	var mu sync.Mutex
	total := 0
	for i := 0; i < n; i++ {
		s := e.NewStream("bg")
		for j := 0; j < 10; j++ {
			s.Push("t", nil, func(p *vclock.Proc) error {
				p.Sleep(time.Second)
				mu.Lock()
				total++
				mu.Unlock()
				return nil
			})
		}
		s.Shutdown()
	}
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if total != n*10 {
		t.Fatalf("total = %d", total)
	}
	// Streams are parallel: 10 sequential seconds each, all overlapped.
	if now := clk.Now(); now != 10*time.Second {
		t.Fatalf("final time = %v, want 10s", now)
	}
}
