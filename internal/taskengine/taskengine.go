// Package taskengine is a lightweight tasking framework in the spirit of
// Argobots, which the HDF5 asynchronous VOL connector uses for its
// background threads. An Engine owns execution streams; each Stream is a
// single virtual-clock process draining a FIFO of tasks. Tasks may
// declare dependencies on other tasks (even across streams) and expose a
// future-like Wait.
//
// The async VOL connector (internal/asyncvol) creates one stream per
// simulated MPI process, matching vol-async's one-background-thread-per-
// process design.
package taskengine

import (
	"fmt"
	"sync"

	"asyncio/internal/critpath"
	"asyncio/internal/metrics"
	"asyncio/internal/vclock"
)

// Engine creates and tracks streams on one clock.
type Engine struct {
	clk *vclock.Clock

	mu      sync.Mutex
	streams []*Stream

	mTasks       *metrics.Counter
	mTaskSeconds *metrics.Histogram
	mQueued      *metrics.Gauge

	critRec *critpath.Recorder
}

// New returns an Engine on clk.
func New(clk *vclock.Clock) *Engine {
	return &Engine{clk: clk}
}

// Clock returns the engine's clock.
func (e *Engine) Clock() *vclock.Clock { return e.clk }

// SetMetrics instruments the engine on m: "taskengine.queued" tracks
// tasks waiting in stream FIFOs, "taskengine.tasks_completed" and
// "taskengine.task_seconds" record executed tasks. Idempotent (the
// first non-nil registry wins), so every rank's setup path may call it
// with the shared registry.
func (e *Engine) SetMetrics(m *metrics.Registry) {
	if m == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mTasks != nil {
		return
	}
	e.mTasks = m.Counter("taskengine.tasks_completed")
	e.mTaskSeconds = m.Histogram("taskengine.task_seconds")
	e.mQueued = m.Gauge("taskengine.queued")
}

// instruments returns the engine's instruments (nil instruments no-op).
func (e *Engine) instruments() (*metrics.Counter, *metrics.Histogram, *metrics.Gauge) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.mTasks, e.mTaskSeconds, e.mQueued
}

// SetCrit attaches the critical-path recorder: streams record their
// idle waits and dependency waits as causal edges. Idempotent (first
// non-nil recorder wins), mirroring SetMetrics.
func (e *Engine) SetCrit(rec *critpath.Recorder) {
	if rec == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.critRec == nil {
		e.critRec = rec
	}
}

func (e *Engine) crit() *critpath.Recorder {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.critRec
}

// NewStream spawns an execution stream: a dedicated process that runs
// pushed tasks in FIFO order. The stream runs until Shutdown.
func (e *Engine) NewStream(name string) *Stream {
	return e.NewStreamOn(e.clk, name)
}

// NewStreamOn is NewStream with the stream's process and events placed
// on an explicit clock — under the sharded engine, a rank's background
// stream lives on the rank's home shard so its task churn contends on
// that shard's lock. clk must be the engine clock or a shard of the
// same coordinator; nil falls back to the engine clock.
func (e *Engine) NewStreamOn(clk *vclock.Clock, name string) *Stream {
	if clk == nil {
		clk = e.clk
	}
	s := &Stream{
		e:      e,
		clk:    clk,
		name:   name,
		wake:   vclock.NewEventNamed(clk, "taskengine:wake"),
		exited: vclock.NewEventNamed(clk, "taskengine:exited"),
	}
	e.mu.Lock()
	e.streams = append(e.streams, s)
	e.mu.Unlock()
	clk.Go("stream:"+name, s.run)
	return s
}

// ShutdownAll shuts down every stream created so far. It does not wait;
// use each stream's Join or clk.Wait.
func (e *Engine) ShutdownAll() {
	e.mu.Lock()
	streams := append([]*Stream(nil), e.streams...)
	e.mu.Unlock()
	for _, s := range streams {
		s.Shutdown()
	}
}

// Stream is a single background execution context.
type Stream struct {
	e    *Engine
	clk  *vclock.Clock // home clock (a shard under the sharded engine)
	name string

	mu      sync.Mutex
	queue   []*Task
	wake    *vclock.Event
	stopped bool
	killErr error        // non-nil once killed; Push then fails tasks instead of panicking
	current *Task        // task being executed, failed on Kill so waiters unwind
	proc    *vclock.Proc // the stream's process, for Kill

	exited *vclock.Event
}

// Name returns the stream name.
func (s *Stream) Name() string { return s.name }

// Task is a unit of work with future semantics.
type Task struct {
	name string
	deps []*Task
	fn   func(p *vclock.Proc) error
	done *vclock.Event

	mu  sync.Mutex
	err error
}

// Push enqueues fn on the stream. The task starts only after every task
// in deps has completed. Pushing to a stopped stream panics — it is a
// lifecycle bug in the caller.
func (s *Stream) Push(name string, deps []*Task, fn func(p *vclock.Proc) error) *Task {
	t := &Task{
		name: name,
		deps: append([]*Task(nil), deps...),
		fn:   fn,
		done: vclock.NewEventNamed(s.clk, "taskengine:done"),
	}
	s.mu.Lock()
	if s.stopped {
		killed := s.killErr
		s.mu.Unlock()
		if killed != nil {
			// A crashed process may still issue a few pushes before it
			// reaches its next blocking point and dies; its work simply
			// fails instead of tripping the lifecycle panic.
			t.complete(killed)
			return t
		}
		panic(fmt.Sprintf("taskengine: Push(%q) on stopped stream %q", name, s.name))
	}
	s.queue = append(s.queue, t)
	wake := s.wake
	s.mu.Unlock()
	_, _, queued := s.e.instruments()
	queued.Add(1)
	wake.Fire()
	return t
}

// Shutdown asks the stream to exit after draining its queue. Idempotent.
func (s *Stream) Shutdown() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	wake := s.wake
	s.mu.Unlock()
	wake.Fire()
}

// Kill terminates the stream as by a crash: the background process dies
// with a vclock.Killed panic at its next blocking point, and every
// queued task — plus the one in flight, if any — completes with reason
// as its error, so drain barriers and event-set waiters unwind instead
// of hanging on tasks that will never run. Idempotent; a subsequent
// Push fails its task with reason instead of panicking.
func (s *Stream) Kill(reason error) {
	s.mu.Lock()
	if s.killErr != nil {
		s.mu.Unlock()
		return
	}
	s.killErr = reason
	s.stopped = true
	queue := s.queue
	s.queue = nil
	cur := s.current
	s.current = nil
	proc := s.proc
	wake := s.wake
	s.mu.Unlock()
	if proc != nil {
		proc.Kill(reason)
	}
	if cur != nil {
		cur.complete(reason)
	}
	for _, t := range queue {
		t.complete(reason)
	}
	if n := len(queue); n > 0 {
		_, _, queued := s.e.instruments()
		queued.Add(-float64(n))
	}
	wake.Fire() // in case the proc had not started yet
}

// Join blocks p until the stream process has exited.
func (s *Stream) Join(p *vclock.Proc) { s.exited.Wait(p) }

// Pending returns the number of queued (not yet started) tasks.
func (s *Stream) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

func (s *Stream) run(p *vclock.Proc) {
	defer s.exited.Fire()
	s.mu.Lock()
	s.proc = p
	s.mu.Unlock()
	for {
		s.mu.Lock()
		if len(s.queue) == 0 {
			if s.stopped {
				s.mu.Unlock()
				return
			}
			// Re-arm the wake event (events are one-shot) and sleep
			// until more work arrives.
			s.wake = vclock.NewEventNamed(s.clk, "taskengine:wake")
			wake := s.wake
			s.mu.Unlock()
			idleStart := p.Now()
			wake.Wait(p)
			s.e.crit().Record(critpath.Edge{
				Track: p.Name(), Cause: critpath.QueueWait, Subsystem: "taskengine",
				Detail: "stream-idle", Start: idleStart, End: p.Now(),
			})
			continue
		}
		t := s.queue[0]
		s.queue = s.queue[1:]
		s.current = t
		s.mu.Unlock()
		tasks, seconds, queued := s.e.instruments()
		queued.Add(-1)
		if len(t.deps) > 0 {
			depStart := p.Now()
			for _, dep := range t.deps {
				dep.done.Wait(p)
			}
			s.e.crit().Record(critpath.Edge{
				Track: p.Name(), Cause: critpath.QueueWait, Subsystem: "taskengine",
				Detail: "task-dep", Start: depStart, End: p.Now(),
			})
		}
		start := p.Now()
		err := t.fn(p)
		tasks.Add(1)
		seconds.Observe((p.Now() - start).Seconds())
		t.complete(err)
		s.mu.Lock()
		s.current = nil
		s.mu.Unlock()
	}
}

// complete records the task's outcome (first writer wins — a kill that
// already failed the task keeps its reason) and wakes waiters.
func (t *Task) complete(err error) {
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.mu.Unlock()
	t.done.Fire()
}

// Wait blocks p until the task completes, returning the task's error.
func (t *Task) Wait(p *vclock.Proc) error {
	t.done.Wait(p)
	return t.Err()
}

// Done reports whether the task has completed.
func (t *Task) Done() bool { return t.done.Fired() }

// Err returns the task's error; nil until completion.
func (t *Task) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Name returns the task name.
func (t *Task) Name() string { return t.name }
