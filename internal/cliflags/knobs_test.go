package cliflags

import (
	"strings"
	"testing"
)

// TestKnobsParseDefaults pins the zero value to the flag defaults:
// no faults, implicit consistency, GPFS durability at seed 1, one shard.
func TestKnobsParseDefaults(t *testing.T) {
	p, err := Knobs{}.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if p.Faults != nil {
		t.Error("zero Knobs produced a fault schedule")
	}
	if p.Consistency != nil {
		t.Error("zero Knobs produced a consistency spec")
	}
	if p.Shards.Auto || p.Shards.N != 1 {
		t.Errorf("zero Knobs shards = %+v, want fixed 1", p.Shards)
	}
}

// TestKnobsParseCanonicalizes checks the String round-trips the
// campaign service relies on for spec normalization.
func TestKnobsParseCanonicalizes(t *testing.T) {
	p, err := Knobs{
		Faults:      "crashrank=3@95s",
		Consistency: "session",
		Durability:  "lustre",
		Shards:      " 2:STRIPE ",
	}.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if p.Faults == nil || p.Faults.String() == "" {
		t.Error("fault schedule did not parse")
	}
	if p.Consistency == nil || !strings.Contains(p.Consistency.String(), "session") {
		t.Errorf("consistency spec = %v", p.Consistency)
	}
	if got := p.Shards.String(); got != "2:stripe" {
		t.Errorf("shards canonical form = %q, want 2:stripe", got)
	}
}

// TestKnobsParseErrors ensures each knob rejects garbage with an error
// naming the knob, mirroring the CLI flag messages.
func TestKnobsParseErrors(t *testing.T) {
	cases := []struct {
		k    Knobs
		want string
	}{
		{Knobs{Faults: "nonsense"}, "faults"},
		{Knobs{Consistency: "psychic"}, "consistency"},
		{Knobs{Durability: "ramdisk"}, "durability"},
		{Knobs{Shards: "many"}, "shards"},
	}
	for _, c := range cases {
		_, err := c.k.Parse()
		if err == nil {
			t.Errorf("%+v: no error", c.k)
			continue
		}
		if !strings.HasPrefix(err.Error(), c.want+":") {
			t.Errorf("%+v: error %q does not name knob %q", c.k, err, c.want)
		}
	}
}
