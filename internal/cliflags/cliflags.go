// Package cliflags defines the observability, fault-injection,
// durability, and sharding flag block shared by the asyncio CLIs.
// cmd/asyncio-bench and cmd/asyncio-trace both register the block
// through Register, so the two tools expose the same flag surface by
// construction — a new shared flag added here appears in both, and the
// surfaces cannot drift apart again.
package cliflags

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"asyncio/internal/critpath"
	"asyncio/internal/faults"
	"asyncio/internal/pfs"
)

// Set holds the parsed values of the shared flag block.
type Set struct {
	// Observability exports.
	TraceJSON  string // -trace-json: Chrome trace-event JSON (Perfetto)
	MetricsCSV string // -metrics: metrics registry as CSV
	CritPath   string // -critpath: critical-path profile JSON + summary table
	Pprof      string // -pprof: critical-path profile as gzipped pprof protobuf

	// Fault injection.
	Faults string // -faults: spec parsed by internal/faults

	// Crash durability (consumed by crash-consistency runs).
	Durability      string // -durability: gpfs | lustre
	DurabilitySeed  int64  // -durability-seed
	CheckpointEvery int    // -checkpoint-every: durable commit interval, 0 = off
	Journal         bool   // -journal: write-ahead journal on the async path

	// PFS consistency model.
	Consistency string // -consistency: spec parsed by internal/pfs

	// Event-engine sharding.
	Shards string // -shards: auto, N, N:block, or N:stripe
}

// Register installs the shared flag block on fs and returns the Set
// the parsed values land in.
func Register(fs *flag.FlagSet) *Set {
	s := &Set{}
	fs.StringVar(&s.TraceJSON, "trace-json", "", "write the run's Chrome trace-event JSON (Perfetto) to this path")
	fs.StringVar(&s.MetricsCSV, "metrics", "", "write the metrics registry as CSV to this path")
	fs.StringVar(&s.CritPath, "critpath", "", "write the run's critical-path profile as JSON to this path and print its summary table")
	fs.StringVar(&s.Pprof, "pprof", "", "write the run's critical-path profile as a gzipped pprof protobuf to this path (go tool pprof)")
	fs.StringVar(&s.Faults, "faults", "", "fault-injection spec (see internal/faults)")
	fs.StringVar(&s.Durability, "durability", "gpfs", "write-back durability semantics on crash: gpfs | lustre")
	fs.Int64Var(&s.DurabilitySeed, "durability-seed", 1, "seed for the crash tearing draws")
	fs.IntVar(&s.CheckpointEvery, "checkpoint-every", 0, "durable checkpoint interval in epochs, 0 = off")
	fs.BoolVar(&s.Journal, "journal", false, "journal asynchronous writes ahead of dispatch")
	fs.StringVar(&s.Consistency, "consistency", "", "PFS consistency model: posix | session | mpiio | commit, with ;key=value tuning (see internal/pfs); empty = historical implicit model")
	fs.StringVar(&s.Shards, "shards", "auto", "intra-run event-engine shards: auto, N, N:block, or N:stripe")
	return s
}

// WantCritPath reports whether any critical-path export was requested;
// callers use it to decide whether to attach a recorder to the run.
func (s *Set) WantCritPath() bool { return s.CritPath != "" || s.Pprof != "" }

// WantObservability reports whether any per-run export was requested.
func (s *Set) WantObservability() bool {
	return s.TraceJSON != "" || s.MetricsCSV != "" || s.WantCritPath()
}

// WantDurability reports whether the crash-durability plumbing
// (checkpoints or journaling) was requested.
func (s *Set) WantDurability() bool { return s.CheckpointEvery > 0 || s.Journal }

// Injector builds the run's fault injector from -faults (nil, nil when
// no spec was given). Injectors serve exactly one run; call once per
// run.
func (s *Set) Injector() (*faults.Injector, error) {
	if s.Faults == "" {
		return nil, nil
	}
	return faults.New(s.Faults)
}

// ConsistencySpec parses -consistency (nil, nil when the flag was left
// empty: the historical implicit model, byte-identical to builds that
// predate the knob).
func (s *Set) ConsistencySpec() (*pfs.ConsistencySpec, error) {
	if s.Consistency == "" {
		return nil, nil
	}
	return pfs.ParseConsistency(s.Consistency)
}

// DurabilityConfig resolves -durability/-durability-seed into the
// write-back cache model crash runs tear on power loss.
func (s *Set) DurabilityConfig() (pfs.DurabilityConfig, error) {
	return durabilityConfig(s.Durability, s.DurabilitySeed)
}

// ExportProfile writes the requested critical-path artifacts: the
// deterministic JSON profile (plus its human summary table on render)
// for -critpath, and the gzipped pprof protobuf for -pprof. A nil
// profile is an error when either flag was set — the run should have
// carried one.
func (s *Set) ExportProfile(prof *critpath.Profile, render io.Writer) error {
	if !s.WantCritPath() {
		return nil
	}
	if prof == nil {
		return errors.New("no critical-path profile was produced")
	}
	if s.CritPath != "" {
		f, err := os.Create(s.CritPath)
		if err != nil {
			return err
		}
		if err := prof.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("writing critical-path profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		if render != nil {
			prof.Render(render)
		}
	}
	if s.Pprof != "" {
		f, err := os.Create(s.Pprof)
		if err != nil {
			return err
		}
		if err := prof.WritePprof(f); err != nil {
			f.Close()
			return fmt.Errorf("writing pprof profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
