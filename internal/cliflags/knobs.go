package cliflags

// This file reuses the knob grammar for non-flag frontends. The
// campaign service (internal/campaign) accepts scenario specs over
// HTTP whose knob fields — faults, consistency, durability, shards —
// are the same strings the CLI flags take. Parsing them through Knobs
// means the HTTP surface and the flag surface share one grammar by
// construction, exactly as Register keeps the two CLIs from drifting.

import (
	"fmt"

	"asyncio/internal/faults"
	"asyncio/internal/pfs"
	"asyncio/internal/shard"
)

// Knobs is the shared flag block's grammar as plain values: the form a
// scenario spec carries them in. Zero values mean "knob not set" and
// parse to the same defaults the flags have.
type Knobs struct {
	Faults         string // -faults spec (see internal/faults)
	Consistency    string // -consistency spec (see internal/pfs)
	Durability     string // -durability: gpfs | lustre ("" = gpfs)
	DurabilitySeed int64  // -durability-seed (0 = 1, the flag default)
	Shards         string // -shards: auto, N, N:block, N:stripe ("" = 1)
}

// ParsedKnobs is the validated, canonicalized form of a Knobs block.
// The spec pointers are schedules/templates, not run-scoped state: build
// a fresh injector (faults.FromSpec) or consistency model
// (pfs.NewConsistency of a copy) per run.
type ParsedKnobs struct {
	Faults      *faults.Spec         // nil when no schedule was given
	Consistency *pfs.ConsistencySpec // nil = historical implicit model
	Durability  pfs.DurabilityConfig
	Shards      shard.Spec
}

// Parse validates every knob with the same parsers the CLI flags use
// and returns the parsed forms. Errors name the knob, mirroring the
// CLIs' "-faults: ..." messages.
func (k Knobs) Parse() (*ParsedKnobs, error) {
	p := &ParsedKnobs{}
	if k.Faults != "" {
		sp, err := faults.ParseSpec(k.Faults)
		if err != nil {
			return nil, fmt.Errorf("faults: %w", err)
		}
		p.Faults = sp
	}
	if k.Consistency != "" {
		sp, err := pfs.ParseConsistency(k.Consistency)
		if err != nil {
			return nil, fmt.Errorf("consistency: %w", err)
		}
		p.Consistency = sp
	}
	name := k.Durability
	if name == "" {
		name = "gpfs"
	}
	seed := k.DurabilitySeed
	if seed == 0 {
		seed = 1
	}
	dur, err := durabilityConfig(name, seed)
	if err != nil {
		return nil, fmt.Errorf("durability: %w", err)
	}
	p.Durability = dur
	raw := k.Shards
	if raw == "" {
		raw = "1"
	}
	sp, err := shard.ParseSpec(raw)
	if err != nil {
		return nil, fmt.Errorf("shards: %w", err)
	}
	p.Shards = sp
	return p, nil
}

// durabilityConfig resolves a durability model name and seed — shared
// by Set.DurabilityConfig (the flags) and Knobs.Parse (the service).
func durabilityConfig(name string, seed int64) (pfs.DurabilityConfig, error) {
	switch name {
	case "gpfs":
		return pfs.GPFSDurability(seed), nil
	case "lustre":
		return pfs.LustreDurability(seed, 8), nil
	}
	return pfs.DurabilityConfig{}, fmt.Errorf("unknown durability %q (want gpfs or lustre)", name)
}
