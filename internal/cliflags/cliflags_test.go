package cliflags

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"asyncio/internal/critpath"
)

// sharedNames is the flag surface the CLIs must agree on. The list is
// asserted here so removing a flag from Register (which would silently
// shrink both CLIs) fails a test rather than a user.
var sharedNames = []string{
	"checkpoint-every", "consistency", "critpath", "durability",
	"durability-seed", "faults", "journal", "metrics", "pprof",
	"shards", "trace-json",
}

func TestRegisterInstallsSharedSurface(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	Register(fs)
	var got []string
	fs.VisitAll(func(f *flag.Flag) { got = append(got, f.Name) })
	sort.Strings(got)
	if len(got) != len(sharedNames) {
		t.Fatalf("registered flags = %v, want %v", got, sharedNames)
	}
	for i := range sharedNames {
		if got[i] != sharedNames[i] {
			t.Fatalf("registered flags = %v, want %v", got, sharedNames)
		}
	}
}

func TestParseAndHelpers(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	s := Register(fs)
	err := fs.Parse([]string{
		"-critpath", "p.json", "-faults", "seed=3;err=gpfs:0.1",
		"-durability", "lustre", "-durability-seed", "7",
		"-checkpoint-every", "2", "-journal",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.WantCritPath() || !s.WantObservability() || !s.WantDurability() {
		t.Fatalf("want* helpers = (%v, %v, %v), want all true",
			s.WantCritPath(), s.WantObservability(), s.WantDurability())
	}
	in, err := s.Injector()
	if err != nil || in == nil {
		t.Fatalf("Injector() = (%v, %v), want non-nil injector", in, err)
	}
	if _, err := s.DurabilityConfig(); err != nil {
		t.Fatalf("DurabilityConfig() error: %v", err)
	}
	s.Durability = "nvram"
	if _, err := s.DurabilityConfig(); err == nil {
		t.Fatal("DurabilityConfig() accepted an unknown mode")
	}
}

func TestExportProfile(t *testing.T) {
	dir := t.TempDir()
	s := &Set{
		CritPath: filepath.Join(dir, "prof.json"),
		Pprof:    filepath.Join(dir, "prof.pb.gz"),
	}
	if err := s.ExportProfile(nil, nil); err == nil {
		t.Fatal("ExportProfile accepted a nil profile with exports requested")
	}

	rec := critpath.NewRecorder()
	rec.Record(critpath.Edge{Track: "rank0", Cause: critpath.Compute, Subsystem: "core", Start: 0, End: 1e9})
	rec.SetMakespan(1e9)
	prof := rec.Profile("test run")
	var table bytes.Buffer
	if err := s.ExportProfile(prof, &table); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.CritPath)
	if err != nil {
		t.Fatal(err)
	}
	back, err := critpath.ParseProfile(data)
	if err != nil {
		t.Fatalf("exported JSON does not round-trip: %v", err)
	}
	if back.Label != "test run" {
		t.Fatalf("round-tripped label = %q", back.Label)
	}
	if table.Len() == 0 {
		t.Fatal("no summary table rendered")
	}
	if fi, err := os.Stat(s.Pprof); err != nil || fi.Size() == 0 {
		t.Fatalf("pprof artifact missing or empty: %v", err)
	}

	// No exports requested: a nil profile is fine and nothing is written.
	none := &Set{}
	if err := none.ExportProfile(nil, nil); err != nil {
		t.Fatal(err)
	}
}
