package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"asyncio/internal/metrics"
)

// testOptions disables the background cadence so tests drive flushes
// explicitly and deterministically.
func testOptions(dir string) Options {
	return Options{Dir: dir, FlushEvery: time.Hour, Logf: func(string, ...any) {}}
}

func mustOpen(t *testing.T, opts Options) (*Store, *RecoveryReport) {
	t.Helper()
	s, rep, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", opts.Dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s, rep
}

func mustGet(t *testing.T, s *Store, key string) []byte {
	t.Helper()
	v, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get(%q) = ok=%v err=%v", key, ok, err)
	}
	return v
}

// TestEmptyDir pins the cold-start path: an empty (or absent) store dir
// opens cleanly with an all-zero report.
func TestEmptyDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "not-yet-created")
	s, rep := mustOpen(t, testOptions(dir))
	if !rep.Clean() || rep.Segments != 0 || rep.Records != 0 || rep.Points != 0 {
		t.Fatalf("empty dir report: %s", rep.Summary())
	}
	if _, ok, err := s.Get("missing"); ok || err != nil {
		t.Fatalf("Get on empty store: ok=%v err=%v", ok, err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestMissingDirOption(t *testing.T) {
	if _, _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Dir succeeded")
	}
}

// TestPutGetFlushRestart is the basic durability loop: write-behind Put
// is readable immediately, survives a flush, and survives a restart.
func TestPutGetFlushRestart(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, testOptions(dir))
	vals := map[string][]byte{
		"a/0": []byte("alpha"),
		"b/1": bytes.Repeat([]byte{0xEE}, 4096),
		"c/2": {}, // empty value is legal
	}
	for k, v := range vals {
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	// Pending reads hit before any flush.
	for k, v := range vals {
		if got := mustGet(t, s, k); !bytes.Equal(got, v) {
			t.Fatalf("pending Get(%q) mismatch", k)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rep := mustOpen(t, testOptions(dir))
	if !rep.Clean() || rep.Points != len(vals) {
		t.Fatalf("restart report: %s", rep.Summary())
	}
	for k, v := range vals {
		if got := mustGet(t, s2, k); !bytes.Equal(got, v) {
			t.Fatalf("restart Get(%q) mismatch", k)
		}
	}
}

// TestCloseFlushesPending pins that a graceful Close persists what the
// flusher had not gotten to yet.
func TestCloseFlushesPending(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, testOptions(dir))
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rep := mustOpen(t, testOptions(dir))
	if rep.Points != 1 {
		t.Fatalf("report after close: %s", rep.Summary())
	}
	if got := mustGet(t, s2, "k"); string(got) != "v" {
		t.Fatalf("Get after close = %q", got)
	}
}

// TestAbandonLosesOnlyPending: the kill -9 stand-in drops unflushed
// writes but never flushed ones.
func TestAbandonLosesOnlyPending(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, testOptions(dir))
	s.Put("flushed", []byte("durable"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Put("pending", []byte("volatile"))
	s.Abandon()
	if err := s.Put("x", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Abandon: %v", err)
	}

	s2, rep := mustOpen(t, testOptions(dir))
	if !rep.Clean() {
		t.Fatalf("abandon left damage: %s", rep.Summary())
	}
	if got := mustGet(t, s2, "flushed"); string(got) != "durable" {
		t.Fatalf("flushed key = %q", got)
	}
	if _, ok, _ := s2.Get("pending"); ok {
		t.Fatal("unflushed key survived a crash")
	}
}

// TestTruncatedTailRecord pins the classic kill -9 shape: a partial
// final frame is quarantined as a torn tail, healed by truncation, and
// the next restart scans clean.
func TestTruncatedTailRecord(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, testOptions(dir))
	for i := 0; i < 3; i++ {
		s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 100))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(dir, segName(1))
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-2); err != nil {
		t.Fatal(err)
	}

	s2, rep := mustOpen(t, testOptions(dir))
	if len(rep.Quarantined) != 1 {
		t.Fatalf("quarantined %d ranges, want 1: %s", len(rep.Quarantined), rep.Summary())
	}
	q := rep.Quarantined[0]
	if !q.Tail || !errors.Is(q, ErrCorrupt) {
		t.Fatalf("tail damage verdict: %+v", q)
	}
	if rep.Healed != "truncated torn tail" {
		t.Fatalf("healed = %q", rep.Healed)
	}
	if rep.Points != 2 {
		t.Fatalf("recovered %d points, want 2", rep.Points)
	}
	for i := 0; i < 2; i++ {
		if got := mustGet(t, s2, fmt.Sprintf("k%d", i)); !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 100)) {
			t.Fatalf("k%d mismatch after torn-tail recovery", i)
		}
	}
	if _, ok, _ := s2.Get("k2"); ok {
		t.Fatal("torn record served")
	}
	// The damaged bytes are preserved for post-mortem.
	qfiles, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(qfiles) == 0 {
		t.Fatalf("no quarantine files: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Healed: the third restart scans clean.
	_, rep3 := mustOpen(t, testOptions(dir))
	if !rep3.Clean() || rep3.Points != 2 {
		t.Fatalf("post-heal restart not clean: %s", rep3.Summary())
	}
}

// TestMidSegmentCorruptionResync flips a byte inside an interior
// record: the scanner must quarantine exactly that record, resync, and
// keep every other record — then heal by compaction.
func TestMidSegmentCorruptionResync(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, testOptions(dir))
	for i := 0; i < 3; i++ {
		s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{0x40 + byte(i)}, 200))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(dir, segName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Middle record's payload: each frame is identical length, flip a
	// byte well inside the second one.
	frameLen := len(b) / 3
	b[frameLen+frameLen/2] ^= 0xFF
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rep := mustOpen(t, testOptions(dir))
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Tail {
		t.Fatalf("mid-segment verdicts: %s", rep.Summary())
	}
	if rep.Healed != "compacted damaged segments" {
		t.Fatalf("healed = %q", rep.Healed)
	}
	if rep.Points != 2 {
		t.Fatalf("recovered %d points, want 2", rep.Points)
	}
	for _, i := range []int{0, 2} {
		if got := mustGet(t, s2, fmt.Sprintf("k%d", i)); !bytes.Equal(got, bytes.Repeat([]byte{0x40 + byte(i)}, 200)) {
			t.Fatalf("k%d mismatch after resync recovery", i)
		}
	}
	if _, ok, _ := s2.Get("k1"); ok {
		t.Fatal("corrupt record served")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep3 := mustOpen(t, testOptions(dir))
	if !rep3.Clean() || rep3.Points != 2 {
		t.Fatalf("post-heal restart not clean: %s", rep3.Summary())
	}
}

// TestDuplicateKeysAcrossSegments pins last-write-wins replay: a tiny
// segment size forces rolls, the same key is written in two segments,
// and recovery must serve the later value.
func TestDuplicateKeysAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.SegmentBytes = 64 // every flush of a 100-byte value rolls
	opts.CompactMinDead = 1 << 40
	s, _ := mustOpen(t, opts)
	s.Put("k", bytes.Repeat([]byte{1}, 100))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Put("other", bytes.Repeat([]byte{9}, 100))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Put("k", bytes.Repeat([]byte{2}, 100))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	ids, err := segmentIDs(dir)
	if err != nil || len(ids) < 2 {
		t.Fatalf("wanted multiple segments, got %v (%v)", ids, err)
	}

	s2, rep := mustOpen(t, opts)
	if rep.Superseded != 1 {
		t.Fatalf("superseded = %d, want 1 (%s)", rep.Superseded, rep.Summary())
	}
	if rep.Points != 2 {
		t.Fatalf("points = %d, want 2", rep.Points)
	}
	if got := mustGet(t, s2, "k"); !bytes.Equal(got, bytes.Repeat([]byte{2}, 100)) {
		t.Fatal("last-write-wins violated: recovered the earlier duplicate")
	}
}

// TestCompaction pins the atomic-rename rewrite: duplicates collapse to
// one segment, every live value survives, and a restart agrees.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.SegmentBytes = 256
	opts.CompactMinDead = 1 << 40 // no auto-compact; the test drives it
	s, _ := mustOpen(t, opts)
	want := map[string][]byte{}
	for round := 0; round < 3; round++ {
		for i := 0; i < 5; i++ {
			k := fmt.Sprintf("k%d", i)
			v := bytes.Repeat([]byte{byte(round*16 + i)}, 64)
			s.Put(k, v)
			want[k] = v
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	ids, err := segmentIDs(dir)
	if err != nil || len(ids) != 1 {
		t.Fatalf("segments after compaction: %v (%v)", ids, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "compact.tmp")); !os.IsNotExist(err) {
		t.Fatalf("compact.tmp left behind: %v", err)
	}
	for k, v := range want {
		if got := mustGet(t, s, k); !bytes.Equal(got, v) {
			t.Fatalf("%s mismatch after compaction", k)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rep := mustOpen(t, opts)
	if !rep.Clean() || rep.Points != len(want) || rep.Superseded != 0 {
		t.Fatalf("post-compaction restart: %s", rep.Summary())
	}
	for k, v := range want {
		if got := mustGet(t, s2, k); !bytes.Equal(got, v) {
			t.Fatalf("%s mismatch after compaction restart", k)
		}
	}
}

// TestAutoCompaction: overwriting the working set past the dead-byte
// threshold compacts without being asked.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.CompactMinDead = 128
	s, _ := mustOpen(t, opts)
	reg := metrics.NewRegistryWithNow(func() time.Duration { return 0 })
	s.Instrument(reg)
	for round := 0; round < 4; round++ {
		s.Put("k", bytes.Repeat([]byte{byte(round)}, 300))
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if c := reg.FindCounter("campaign.store.compactions"); c.Value() == 0 {
		t.Fatal("no auto-compaction despite dead bytes exceeding live")
	}
	if got := mustGet(t, s, "k"); !bytes.Equal(got, bytes.Repeat([]byte{3}, 300)) {
		t.Fatal("value lost across auto-compaction")
	}
}

// TestInterruptedCompactionTemp: a leftover compact.tmp (crash before
// the rename commit point) is discarded and the old segments win.
func TestInterruptedCompactionTemp(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, testOptions(dir))
	s.Put("k", []byte("committed"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "compact.tmp"), []byte("half a compaction"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, rep := mustOpen(t, testOptions(dir))
	if !rep.Clean() {
		t.Fatalf("tmp file treated as damage: %s", rep.Summary())
	}
	if got := mustGet(t, s2, "k"); string(got) != "committed" {
		t.Fatalf("k = %q", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "compact.tmp")); !os.IsNotExist(err) {
		t.Fatal("stale compact.tmp not removed")
	}
}

// TestReadTimeRotDetected: a record that verified at scan time but is
// damaged afterwards returns a typed error on Get — never wrong bytes.
func TestReadTimeRotDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, testOptions(dir))
	s.Put("k", bytes.Repeat([]byte{7}, 512))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the file behind the open store's back.
	seg := filepath.Join(dir, segName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := s.Get("k"); err == nil {
		t.Fatalf("rotted record served: ok=%v val=%d bytes", ok, len(v))
	}
}

// TestFsyncSmoke exercises the fsync-on-flush path end to end.
func TestFsyncSmoke(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.Fsync = true
	s, _ := mustOpen(t, opts)
	s.Put("k", []byte("synced"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _ := mustOpen(t, opts)
	if got := mustGet(t, s2, "k"); string(got) != "synced" {
		t.Fatalf("k = %q", got)
	}
}

// TestWriteBehindFlusher: with a real cadence, a Put becomes durable
// without any explicit Flush call.
func TestWriteBehindFlusher(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.FlushEvery = time.Millisecond
	s, _ := mustOpen(t, opts)
	s.Put("k", []byte("behind"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.Stats(); st.PendingBytes == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background flusher never drained the pending table")
		}
		time.Sleep(time.Millisecond)
	}
	s.Abandon() // crash: pending already flushed, so nothing is lost
	s2, _ := mustOpen(t, testOptions(dir))
	if got := mustGet(t, s2, "k"); string(got) != "behind" {
		t.Fatalf("k = %q", got)
	}
}

// TestInstrumentCounters pins the metric names the service dashboards
// and CI grep for.
func TestInstrumentCounters(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, testOptions(dir))
	reg := metrics.NewRegistryWithNow(func() time.Duration { return 0 })
	s.Instrument(reg)
	s.Put("k", []byte("v"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if c := reg.FindCounter("campaign.store.flush.records"); c == nil || c.Value() != 1 {
		t.Fatalf("flush.records = %v", c.Value())
	}
	if g := reg.FindGauge("campaign.store.points"); g == nil || g.Value() != 1 {
		t.Fatal("points gauge not maintained")
	}
}
