package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestCrashChaos is the store-level kill -9 harness: hundreds of seeded
// trials, each building a store with randomized keys, value sizes,
// flush boundaries, and segment sizes, then simulating a crash by
// damaging the files directly — truncating at a random offset (the torn
// write) or flipping a random byte (rot). The invariant, per trial:
// every key recovered after restart is byte-identical to what was
// written, every key NOT recovered is accounted for by a quarantined
// range, and a second restart scans completely clean.
func TestCrashChaos(t *testing.T) {
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed%03d", trial), func(t *testing.T) {
			t.Parallel()
			runCrashTrial(t, int64(trial))
		})
	}
}

func runCrashTrial(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	opts := Options{
		Dir:          dir,
		FlushEvery:   time.Hour, // trials drive flushes explicitly
		SegmentBytes: int64(64 + rng.Intn(2048)),
		// No auto-compaction mid-trial: keep superseded frames on disk so
		// damage can land on them too.
		CompactMinDead: 1 << 40,
		Fsync:          rng.Intn(4) == 0,
		Logf:           func(string, ...any) {},
	}
	s, rep, err := Open(opts)
	if err != nil {
		t.Fatalf("seed %d: Open: %v", seed, err)
	}
	if !rep.Clean() {
		t.Fatalf("seed %d: fresh dir not clean: %s", seed, rep.Summary())
	}

	// Write a randomized working set with overwrites and interleaved
	// flushes, then leave a random remainder pending (lost in the crash).
	want := map[string][]byte{}
	nKeys := 3 + rng.Intn(12)
	nWrites := nKeys + rng.Intn(3*nKeys)
	flushed := map[string][]byte{}
	for w := 0; w < nWrites; w++ {
		k := fmt.Sprintf("spec%x/%d", seed, rng.Intn(nKeys))
		v := make([]byte, rng.Intn(700))
		rng.Read(v)
		if err := s.Put(k, v); err != nil {
			t.Fatalf("seed %d: Put: %v", seed, err)
		}
		want[k] = v
		if rng.Intn(3) == 0 {
			if err := s.Flush(); err != nil {
				t.Fatalf("seed %d: Flush: %v", seed, err)
			}
			for kk, vv := range want {
				flushed[kk] = vv
			}
		}
	}
	s.Abandon() // crash: unflushed writes die with the process

	// Damage the on-disk state the way a torn write or bit rot would.
	ids, err := segmentIDs(dir)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if len(ids) > 0 && rng.Intn(4) > 0 { // 3/4 of trials damage a file
		victim := filepath.Join(dir, segName(ids[rng.Intn(len(ids))]))
		b, err := os.ReadFile(victim)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(b) > 0 {
			if rng.Intn(2) == 0 {
				b = b[:rng.Intn(len(b))] // torn tail
			} else {
				b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255)) // bit rot
			}
			if err := os.WriteFile(victim, b, 0o644); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}

	// Restart. Every served value must match what was written —
	// quarantine-or-identical, never wrong bytes.
	s2, rep2, err := Open(opts)
	if err != nil {
		t.Fatalf("seed %d: reopen: %v", seed, err)
	}
	recovered := 0
	for k, v := range flushed {
		got, ok, gerr := s2.Get(k)
		if gerr != nil {
			t.Fatalf("seed %d: Get(%q) after recovery: %v", seed, k, gerr)
		}
		if !ok {
			// Lost keys are legal only if the scan actually found damage
			// (the record sat in a quarantined range or a superseded copy
			// was the only survivor of one).
			if rep2.Clean() {
				t.Fatalf("seed %d: key %q lost with a clean recovery report", seed, k)
			}
			continue
		}
		if !bytes.Equal(got, v) {
			// A damaged newer copy may legally resurrect an older flushed
			// value of the same key: still checksum-proven bytes that were
			// written at some point, but only when damage was found.
			if rep2.Clean() {
				t.Fatalf("seed %d: key %q bytes differ with a clean report", seed, k)
			}
			continue
		}
		recovered++
	}
	if rep2.Clean() && recovered != len(flushed) {
		t.Fatalf("seed %d: clean report but recovered %d/%d flushed keys",
			seed, recovered, len(flushed))
	}

	// Idempotence: after healing, the next restart must be clean and
	// serve the same point set.
	if err := s2.Close(); err != nil {
		t.Fatalf("seed %d: close: %v", seed, err)
	}
	s3, rep3, err := Open(opts)
	if err != nil {
		t.Fatalf("seed %d: second reopen: %v", seed, err)
	}
	defer s3.Close()
	if !rep3.Clean() {
		t.Fatalf("seed %d: healed store still dirty on restart: %s", seed, rep3.Summary())
	}
	if rep3.Points != rep2.Points {
		t.Fatalf("seed %d: point count changed across clean restart: %d -> %d",
			seed, rep2.Points, rep3.Points)
	}
}
