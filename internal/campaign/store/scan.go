package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"asyncio/internal/recovery"
)

// ErrCorrupt is wrapped by every quarantined-range error, so callers
// can errors.Is against a single sentinel.
var ErrCorrupt = errors.New("store: corrupt record data")

// CorruptRangeError is the typed verdict on one quarantined byte range:
// a torn tail after a crash, a rotted record, or hostile garbage. It
// wraps ErrCorrupt.
type CorruptRangeError struct {
	Segment string // segment file name
	Off     int64  // first damaged byte
	Len     int64  // damaged byte count
	Reason  string // why decoding failed
	Tail    bool   // damage runs to end of file (the torn-write shape)
}

func (e *CorruptRangeError) Error() string {
	kind := "corrupt range"
	if e.Tail {
		kind = "torn tail"
	}
	return fmt.Sprintf("store: %s in %s at byte %d (%d bytes): %s", kind, e.Segment, e.Off, e.Len, e.Reason)
}

func (e *CorruptRangeError) Unwrap() error { return ErrCorrupt }

// RecoveryReport describes what Open's scan/replay pass found.
type RecoveryReport struct {
	Segments   int // segment files scanned
	Records    int // checksum-valid records replayed
	Points     int // live keys after last-write-wins replay
	Superseded int // records shadowed by a later write of the same key
	LiveBytes  int64

	// Quarantined lists every damaged byte range, one typed error per
	// range. The raw bytes are preserved under <dir>/quarantine/ for
	// post-mortems; the serving path never touches them.
	Quarantined      []*CorruptRangeError
	QuarantinedBytes int64
	// Healed names the repair applied: "" (nothing to heal),
	// "truncated torn tail", or "compacted damaged segments".
	Healed string
}

// Clean reports whether the scan found no damage at all.
func (r *RecoveryReport) Clean() bool { return len(r.Quarantined) == 0 }

// Summary renders a one-line human-readable digest.
func (r *RecoveryReport) Summary() string {
	s := fmt.Sprintf("%d segments, %d records, %d live points (%d superseded), %d quarantined",
		r.Segments, r.Records, r.Points, r.Superseded, len(r.Quarantined))
	if r.Healed != "" {
		s += ", healed: " + r.Healed
	}
	return s
}

// record encoding inside a frame payload: keyLen u16 | key | value.
// The frame supplies length, checksum, and resync; this layer only
// names the key.

const maxKeyLen = 1<<16 - 1

func encodeRecord(key string, val []byte) []byte {
	b := make([]byte, 0, 2+len(key)+len(val))
	b = append(b, byte(len(key)), byte(len(key)>>8))
	b = append(b, key...)
	return append(b, val...)
}

func decodeRecord(payload []byte) (key string, val []byte, err error) {
	if len(payload) < 2 {
		return "", nil, errors.New("record shorter than its key length field")
	}
	klen := int(payload[0]) | int(payload[1])<<8
	if len(payload) < 2+klen {
		return "", nil, fmt.Errorf("key length %d exceeds record", klen)
	}
	return string(payload[2 : 2+klen]), payload[2+klen:], nil
}

// segmentIDs lists the segment ids present in dir, ascending.
func segmentIDs(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: reading dir: %w", err)
	}
	var ids []int
	for _, e := range ents {
		var id int
		if n, _ := fmt.Sscanf(e.Name(), "points-%06d.seg", &id); n == 1 && e.Name() == segName(id) {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, nil
}

// recover is Open's scan/replay pass: walk every segment in id order,
// replay checksum-valid records last-write-wins into the index,
// quarantine damaged ranges, and heal (truncate a torn tail, or compact
// damaged segments away) so the next restart scans clean.
func (s *Store) recover() (*RecoveryReport, error) {
	// A compact.tmp is an interrupted compaction that never reached its
	// rename commit point: the old segments are still authoritative.
	if err := os.Remove(filepath.Join(s.opts.Dir, "compact.tmp")); err == nil {
		s.opts.Logf("store: removed interrupted compaction temp file")
	}
	ids, err := segmentIDs(s.opts.Dir)
	if err != nil {
		return nil, err
	}
	rep := &RecoveryReport{Segments: len(ids)}
	damaged := make(map[int]bool)
	for _, id := range ids {
		if err := s.openSegmentLocked(id); err != nil {
			return nil, err
		}
		seg := s.segs[id]
		buf := make([]byte, seg.size)
		if _, err := seg.f.ReadAt(buf, 0); err != nil && seg.size > 0 {
			return nil, fmt.Errorf("store: reading %s: %w", segName(id), err)
		}
		s.scanSegment(id, buf, rep)
		if tail := tailDamage(rep, id); tail != nil || segDamaged(rep, id) {
			damaged[id] = true
		}
	}
	rep.Points = len(s.index)
	rep.LiveBytes = s.liveB
	// The scan runs before any Instrument call can have registered the
	// counters; Instrument backfills scan totals from this report.
	s.lastRep = rep

	if len(rep.Quarantined) > 0 {
		if err := s.saveQuarantine(rep); err != nil {
			return nil, err
		}
		if err := s.heal(rep, damaged); err != nil {
			return nil, err
		}
	}

	// The active segment is the highest-numbered survivor; a fresh one
	// is created lazily on first flush when the store is empty.
	if len(s.segs) > 0 {
		maxID := 0
		for id := range s.segs {
			if id > maxID {
				maxID = id
			}
		}
		s.active = s.segs[maxID]
	}
	s.updateGaugesLocked()
	for _, q := range rep.Quarantined {
		s.opts.Logf("store: quarantined: %v", q)
	}
	s.opts.Logf("store: recovered: %s", rep.Summary())
	return rep, nil
}

// scanSegment replays one segment image into the index, appending a
// typed CorruptRangeError to rep for every undecodable byte range.
func (s *Store) scanSegment(id int, buf []byte, rep *RecoveryReport) {
	name := segName(id)
	off := 0
	for off < len(buf) {
		payload, n, err := recovery.DecodeFrame(buf[off:])
		if err != nil {
			// Resync past the damage: a later record that still
			// checksums is good data, everything skipped is quarantined.
			next := recovery.ResyncFrame(buf, off+1)
			end := len(buf)
			if next >= 0 {
				end = next
			}
			var fe *recovery.FrameError
			reason := err.Error()
			if errors.As(err, &fe) {
				reason = fe.Reason
			}
			q := &CorruptRangeError{Segment: name, Off: int64(off), Len: int64(end - off),
				Reason: reason, Tail: end == len(buf)}
			rep.Quarantined = append(rep.Quarantined, q)
			rep.QuarantinedBytes += q.Len
			off = end
			continue
		}
		key, _, rerr := decodeRecord(payload)
		if rerr != nil {
			// The frame checksums but its payload is not a record —
			// quarantine just this frame and keep scanning.
			q := &CorruptRangeError{Segment: name, Off: int64(off), Len: int64(n),
				Reason: "valid frame, malformed record: " + rerr.Error()}
			rep.Quarantined = append(rep.Quarantined, q)
			rep.QuarantinedBytes += q.Len
			off += n
			continue
		}
		rep.Records++
		if old, ok := s.index[key]; ok {
			// Last-write-wins: segments scan in ascending id and offsets
			// in ascending order, so this record supersedes the old one.
			rep.Superseded++
			s.deadB += int64(old.n)
			s.liveB -= int64(old.n)
		}
		s.index[key] = ref{seg: id, off: int64(off), n: n}
		s.liveB += int64(n)
		off += n
	}
}

// tailDamage returns the quarantined range that runs to segment id's
// EOF, if any.
func tailDamage(rep *RecoveryReport, id int) *CorruptRangeError {
	for _, q := range rep.Quarantined {
		if q.Segment == segName(id) && q.Tail {
			return q
		}
	}
	return nil
}

// segDamaged reports whether segment id has any mid-file damage.
func segDamaged(rep *RecoveryReport, id int) bool {
	for _, q := range rep.Quarantined {
		if q.Segment == segName(id) && !q.Tail {
			return true
		}
	}
	return false
}

// saveQuarantine copies every damaged byte range into
// <dir>/quarantine/<segment>.<off>.bin before healing destroys it, so
// no corrupt record ever disappears unaccounted.
func (s *Store) saveQuarantine(rep *RecoveryReport) error {
	qdir := filepath.Join(s.opts.Dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("store: creating quarantine dir: %w", err)
	}
	for _, q := range rep.Quarantined {
		var id int
		fmt.Sscanf(q.Segment, "points-%06d.seg", &id)
		seg := s.segs[id]
		if seg == nil {
			continue
		}
		buf := make([]byte, q.Len)
		if _, err := seg.f.ReadAt(buf, q.Off); err != nil {
			return fmt.Errorf("store: reading quarantine range: %w", err)
		}
		name := fmt.Sprintf("%s.%d.bin", strings.TrimSuffix(q.Segment, ".seg"), q.Off)
		if err := os.WriteFile(filepath.Join(qdir, name), buf, 0o644); err != nil {
			return fmt.Errorf("store: writing quarantine file: %w", err)
		}
	}
	return nil
}

// heal removes quarantined damage from the serving path. A pure torn
// tail (the kill -9 shape) is truncated in place — cheap, and exactly
// what a real WAL does. Mid-segment damage triggers a compaction, which
// rewrites the live set into a fresh segment and deletes the damaged
// files under the atomic-rename protocol.
func (s *Store) heal(rep *RecoveryReport, damaged map[int]bool) error {
	tailOnly := true
	for _, q := range rep.Quarantined {
		if !q.Tail {
			tailOnly = false
			break
		}
	}
	if tailOnly {
		for id := range damaged {
			q := tailDamage(rep, id)
			if q == nil {
				continue
			}
			seg := s.segs[id]
			if err := seg.f.Truncate(q.Off); err != nil {
				return fmt.Errorf("store: truncating torn tail of %s: %w", segName(id), err)
			}
			if err := seg.f.Sync(); err != nil {
				return fmt.Errorf("store: fsync after truncate: %w", err)
			}
			seg.size = q.Off
		}
		rep.Healed = "truncated torn tail"
		return nil
	}
	if err := s.compactLocked(); err != nil {
		return fmt.Errorf("store: healing compaction: %w", err)
	}
	rep.Healed = "compacted damaged segments"
	return nil
}
