package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"asyncio/internal/recovery"
)

func writeSegmentForTest(dir string, image []byte) error {
	return os.WriteFile(filepath.Join(dir, segName(1)), image, 0o644)
}

// FuzzStoreRecord feeds arbitrary bytes to the store as a segment file
// image and asserts the recovery contract: the scan never panics, every
// byte is accounted as either a replayed record or a quarantined range,
// and every record the scan accepts reads back byte-identical through
// the full Get path (frame re-verify included). The corpus seeds cover
// a clean segment, a torn tail, an interior flip, and garbage.
func FuzzStoreRecord(f *testing.F) {
	clean := recovery.AppendFrame(nil, encodeRecord("spec1/0", []byte("ranks=4\npeak=1.5\nest=0.9\n")))
	clean = recovery.AppendFrame(clean, encodeRecord("spec1/1", bytes.Repeat([]byte{0xAB}, 64)))
	f.Add(clean)
	f.Add(clean[:len(clean)-3]) // torn tail
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped) // interior damage
	f.Add([]byte("FRM1 but not really a frame"))
	f.Add([]byte{})
	f.Add(recovery.AppendFrame(nil, []byte{0xFF, 0xFF})) // valid frame, absurd key length

	f.Fuzz(func(t *testing.T, segImage []byte) {
		dir := t.TempDir()
		s := &Store{
			opts:    Options{Dir: dir, Logf: func(string, ...any) {}}.withDefaults(),
			index:   make(map[string]ref),
			pending: make(map[string][]byte),
			segs:    make(map[int]*segment),
		}
		rep := &RecoveryReport{}
		s.scanSegment(1, segImage, rep) // must not panic on any input

		// Accounting: replayed frames plus quarantined ranges tile the
		// whole image — no byte silently dropped.
		var replayed, super int64
		for _, r := range s.index {
			replayed += int64(r.n)
		}
		// Superseded frames were replayed too; rescan cheaply to count
		// their bytes (index only keeps the winners).
		if rep.Superseded > 0 {
			off := 0
			for off < len(segImage) {
				if _, n, err := recovery.DecodeFrame(segImage[off:]); err == nil {
					if _, _, rerr := decodeRecord(segImage[off+8 : off+n-4]); rerr == nil {
						super += int64(n)
					}
					off += n
					continue
				}
				next := recovery.ResyncFrame(segImage, off+1)
				if next < 0 {
					break
				}
				off = next
			}
			super -= replayed
			if super < 0 {
				super = 0
			}
		}
		// Valid-frame-malformed-record ranges are quarantined with their
		// frame length, so totals must tile exactly.
		if got := replayed + super + rep.QuarantinedBytes; got != int64(len(segImage)) {
			t.Fatalf("accounting hole: %d replayed + %d superseded + %d quarantined != %d image bytes",
				replayed, super, rep.QuarantinedBytes, len(segImage))
		}

		if len(s.index) == 0 {
			return
		}

		// Persist the image and run the real Open: every accepted record
		// must survive the full read path byte-identical.
		if err := writeSegmentForTest(dir, segImage); err != nil {
			t.Fatal(err)
		}
		s2, rep2, err := Open(Options{Dir: dir, FlushEvery: time.Hour, Logf: func(string, ...any) {}})
		if err != nil {
			t.Fatalf("Open on fuzzed image: %v", err)
		}
		defer s2.Close()
		if rep2.Points != len(s.index) {
			t.Fatalf("white-box scan found %d points, Open found %d", len(s.index), rep2.Points)
		}
		for key, r := range s.index {
			wantPayload, _, derr := recovery.DecodeFrame(segImage[r.off : r.off+int64(r.n)])
			if derr != nil {
				t.Fatalf("accepted record at %d does not re-decode: %v", r.off, derr)
			}
			_, wantVal, rerr := decodeRecord(wantPayload)
			if rerr != nil {
				t.Fatalf("accepted record at %d has malformed payload: %v", r.off, rerr)
			}
			got, ok, gerr := s2.Get(key)
			if gerr != nil || !ok {
				t.Fatalf("Get(%q) = ok=%v err=%v for a scanned record", key, ok, gerr)
			}
			if !bytes.Equal(got, wantVal) {
				t.Fatalf("Get(%q) returned different bytes than the segment holds", key)
			}
		}
	})
}
