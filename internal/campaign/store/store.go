// Package store is the campaign service's durable point-result store:
// a persistent, content-addressed key/value log that sits behind the
// in-memory LRU so computed simulation points survive a daemon crash.
//
// Layout: a directory of append-only segment files (points-NNNNNN.seg),
// each a sequence of checksummed frames (internal/recovery's exported
// record framing) holding one key/value record. Writes are
// write-behind: Put lands in an in-memory pending table and a
// background flusher appends it to the active segment, so the serving
// hot path never waits on disk. Recovery is scan/replay: Open walks
// every segment in id order, replays records last-write-wins into the
// index, quarantines torn or corrupt byte ranges with typed errors, and
// heals the damage by truncating a torn tail or compacting corrupt
// segments away. Compaction rewrites the live set into a fresh segment
// and installs it with an atomic rename, so a crash at any point leaves
// either the old segments or the new one — never a half-written store.
//
// The crash-consistency contract mirrors the simulator's recovery
// journal: after a kill -9 at any instant, every record either survives
// byte-identical (its frame checksum proves it) or is quarantined and
// recomputed — a recovered point is indistinguishable from a freshly
// computed one because point computation is deterministic.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"asyncio/internal/metrics"
	"asyncio/internal/recovery"
)

// Options configures Open.
type Options struct {
	// Dir is the segment directory, created if absent. Required.
	Dir string
	// Fsync syncs the active segment after every flush batch. Off, a
	// kill -9 can lose writes the OS had not yet persisted; recovery
	// still never serves wrong bytes either way.
	Fsync bool
	// FlushEvery is the write-behind flush cadence (default 50ms).
	FlushEvery time.Duration
	// FlushBytes triggers an early flush once this much is pending
	// (default 1 MiB).
	FlushBytes int
	// SegmentBytes rolls the active segment past this size (default 8 MiB).
	SegmentBytes int64
	// CompactMinDead is the dead-byte floor below which auto-compaction
	// never triggers (default 64 KiB). Compaction also requires dead
	// bytes to exceed live bytes.
	CompactMinDead int64
	// Logf, when set, receives recovery and compaction log lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.FlushEvery <= 0 {
		o.FlushEvery = 50 * time.Millisecond
	}
	if o.FlushBytes <= 0 {
		o.FlushBytes = 1 << 20
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.CompactMinDead <= 0 {
		o.CompactMinDead = 64 << 10
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// ErrClosed is returned by operations on a closed (or abandoned) store.
var ErrClosed = errors.New("store: closed")

// ref locates one live record's frame inside a segment.
type ref struct {
	seg int   // segment id
	off int64 // frame start offset
	n   int   // frame length
}

// segment is one open segment file.
type segment struct {
	id   int
	f    *os.File
	size int64
}

func segName(id int) string { return fmt.Sprintf("points-%06d.seg", id) }

// Store is the durable point store. Safe for concurrent use.
type Store struct {
	opts Options

	mu       sync.Mutex
	index    map[string]ref
	pending  map[string][]byte // written, not yet flushed; last value wins
	order    []string          // pending flush order (unique keys)
	pendingB int
	segs     map[int]*segment
	active   *segment
	liveB    int64 // bytes of live frames
	deadB    int64 // bytes of superseded frames
	stopping bool  // Close/Abandon has begun; guards double-stop
	closed   bool

	lastRep *RecoveryReport // what Open's scan found; Instrument backfills from it

	flushKick chan struct{}
	stop      chan struct{}
	wg        sync.WaitGroup

	// Pay-for-use instruments; nil-safe when never registered.
	mScanRecords, mScanQuarantined *metrics.Counter
	mFlushRecords, mFlushBytes     *metrics.Counter
	mCompactions, mReadErrors      *metrics.Counter
	gPoints, gSegments, gLiveBytes *metrics.Gauge
}

// Open scans dir, replays every segment into the index (quarantining
// and healing any damage), and starts the write-behind flusher. The
// report describes what recovery found; it is never nil on success.
func Open(opts Options) (*Store, *RecoveryReport, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, nil, errors.New("store: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: creating dir: %w", err)
	}
	s := &Store{
		opts:      opts,
		index:     make(map[string]ref),
		pending:   make(map[string][]byte),
		segs:      make(map[int]*segment),
		flushKick: make(chan struct{}, 1),
		stop:      make(chan struct{}),
	}
	rep, err := s.recover()
	if err != nil {
		s.closeFiles()
		return nil, nil, err
	}
	s.wg.Add(1)
	go s.flusher()
	return s, rep, nil
}

// Instrument registers the store's counters and gauges under
// "campaign.store.*". Call once, before serving.
func (s *Store) Instrument(m *metrics.Registry) {
	s.mScanRecords = m.Counter("campaign.store.scan.records")
	s.mScanQuarantined = m.Counter("campaign.store.scan.quarantined")
	s.mFlushRecords = m.Counter("campaign.store.flush.records")
	s.mFlushBytes = m.Counter("campaign.store.flush.bytes")
	s.mCompactions = m.Counter("campaign.store.compactions")
	s.mReadErrors = m.Counter("campaign.store.read.errors")
	s.gPoints = m.Gauge("campaign.store.points")
	s.gSegments = m.Gauge("campaign.store.segments")
	s.gLiveBytes = m.Gauge("campaign.store.live.bytes")
	s.mu.Lock()
	if rep := s.lastRep; rep != nil {
		// Open's scan ran before these counters existed: credit it now.
		s.mScanRecords.Add(int64(rep.Records))
		s.mScanQuarantined.Add(int64(len(rep.Quarantined)))
	}
	s.updateGaugesLocked()
	s.mu.Unlock()
}

func (s *Store) updateGaugesLocked() {
	s.gPoints.Set(float64(len(s.index) + len(s.pending)))
	s.gSegments.Set(float64(len(s.segs)))
	s.gLiveBytes.Set(float64(s.liveB))
}

// Stats is a point-in-time summary for health endpoints.
type Stats struct {
	Points       int // live keys (flushed + pending)
	Segments     int
	LiveBytes    int64
	PendingBytes int
}

func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Points:       len(s.index) + len(s.pendingOnlyLocked()),
		Segments:     len(s.segs),
		LiveBytes:    s.liveB,
		PendingBytes: s.pendingB,
	}
}

// pendingOnlyLocked returns the pending keys not yet in the index (a
// pending overwrite of an indexed key is not a new point).
func (s *Store) pendingOnlyLocked() []string {
	var only []string
	for k := range s.pending {
		if _, ok := s.index[k]; !ok {
			only = append(only, k)
		}
	}
	return only
}

// Put stores val under key, write-behind: the call returns once the
// value is in the pending table. A duplicate Put before the flush
// replaces the pending value (and identical point payloads make the
// question moot — values are content-addressed).
func (s *Store) Put(key string, val []byte) error {
	if len(key) > maxKeyLen {
		return fmt.Errorf("store: key %d bytes exceeds limit %d", len(key), maxKeyLen)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if old, ok := s.pending[key]; ok {
		s.pendingB -= len(old)
	} else {
		s.order = append(s.order, key)
	}
	s.pending[key] = append([]byte(nil), val...)
	s.pendingB += len(val)
	kick := s.pendingB >= s.opts.FlushBytes
	s.updateGaugesLocked()
	s.mu.Unlock()
	if kick {
		select {
		case s.flushKick <- struct{}{}:
		default:
		}
	}
	return nil
}

// Get returns the stored value for key. ok is false on a clean miss;
// err is non-nil when the record exists but can no longer be read back
// verifiably (I/O error or checksum failure) — the caller should treat
// that as a miss and recompute, never serve unverified bytes.
func (s *Store) Get(key string) (val []byte, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	if v, ok := s.pending[key]; ok {
		return append([]byte(nil), v...), true, nil
	}
	r, ok := s.index[key]
	if !ok {
		return nil, false, nil
	}
	seg := s.segs[r.seg]
	if seg == nil {
		return nil, false, fmt.Errorf("store: index references missing segment %d", r.seg)
	}
	buf := make([]byte, r.n)
	if _, rerr := seg.f.ReadAt(buf, r.off); rerr != nil {
		s.mReadErrors.Add(1)
		return nil, false, fmt.Errorf("store: reading %s @%d: %w", segName(r.seg), r.off, rerr)
	}
	payload, _, derr := recovery.DecodeFrame(buf)
	if derr != nil {
		// The frame verified at scan time but fails now: on-disk rot.
		// Typed error, never wrong bytes.
		s.mReadErrors.Add(1)
		return nil, false, fmt.Errorf("store: record for %q rotted on disk: %w", key, derr)
	}
	k, v, perr := decodeRecord(payload)
	if perr != nil || k != key {
		s.mReadErrors.Add(1)
		return nil, false, fmt.Errorf("store: record for %q decodes to key %q (%v)", key, k, perr)
	}
	return append([]byte(nil), v...), true, nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index) + len(s.pendingOnlyLocked())
}

// Flush appends every pending record to the active segment and updates
// the index. Auto-compacts when the dead-byte ratio warrants it.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	if s.deadB > s.opts.CompactMinDead && s.deadB > s.liveB {
		return s.compactLocked()
	}
	return nil
}

func (s *Store) flushLocked() error {
	if len(s.order) == 0 {
		return nil
	}
	for _, key := range s.order {
		val := s.pending[key]
		payload := encodeRecord(key, val)
		frame := recovery.AppendFrame(nil, payload)
		if err := s.rollIfNeededLocked(int64(len(frame))); err != nil {
			return err
		}
		seg := s.active
		if _, err := seg.f.WriteAt(frame, seg.size); err != nil {
			return fmt.Errorf("store: appending to %s: %w", segName(seg.id), err)
		}
		if old, ok := s.index[key]; ok {
			s.deadB += int64(old.n)
			s.liveB -= int64(old.n)
		}
		s.index[key] = ref{seg: seg.id, off: seg.size, n: len(frame)}
		seg.size += int64(len(frame))
		s.liveB += int64(len(frame))
		s.mFlushRecords.Add(1)
		s.mFlushBytes.Add(int64(len(frame)))
	}
	if s.opts.Fsync {
		if err := s.active.f.Sync(); err != nil {
			return fmt.Errorf("store: fsync %s: %w", segName(s.active.id), err)
		}
	}
	s.pending = make(map[string][]byte)
	s.order = s.order[:0]
	s.pendingB = 0
	s.updateGaugesLocked()
	return nil
}

// rollIfNeededLocked ensures there is an active segment with room for
// one more frame of the given size, creating or rolling as needed.
func (s *Store) rollIfNeededLocked(frameLen int64) error {
	if s.active != nil && (s.active.size == 0 || s.active.size+frameLen <= s.opts.SegmentBytes) {
		return nil
	}
	id := 1
	if s.active != nil {
		id = s.active.id + 1
	} else {
		for sid := range s.segs {
			if sid >= id {
				id = sid + 1
			}
		}
	}
	return s.openSegmentLocked(id)
}

// openSegmentLocked creates (or reopens) segment id as the active one.
func (s *Store) openSegmentLocked(id int) error {
	path := filepath.Join(s.opts.Dir, segName(id))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: stat segment: %w", err)
	}
	seg := &segment{id: id, f: f, size: st.Size()}
	s.segs[id] = seg
	s.active = seg
	if err := s.syncDir(); err != nil {
		return err
	}
	return nil
}

// syncDir fsyncs the store directory so segment creations and renames
// are themselves durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.opts.Dir)
	if err != nil {
		return fmt.Errorf("store: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: dir sync: %w", err)
	}
	return nil
}

// Compact rewrites the live record set into one fresh segment and
// atomically replaces the old segments with it: write to a temp file,
// fsync, rename into place (with a segment id above every existing
// one, so last-write-wins replay prefers it even if a crash strands
// the old segments), then delete the superseded files. Pending writes
// are flushed first.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	newID := 1
	for id := range s.segs {
		if id >= newID {
			newID = id + 1
		}
	}
	var buf []byte
	newRefs := make(map[string]ref, len(keys))
	for _, k := range keys {
		r := s.index[k]
		seg := s.segs[r.seg]
		frame := make([]byte, r.n)
		if _, err := seg.f.ReadAt(frame, r.off); err != nil {
			return fmt.Errorf("store: compact read %s @%d: %w", segName(r.seg), r.off, err)
		}
		if _, _, err := recovery.DecodeFrame(frame); err != nil {
			return fmt.Errorf("store: compact found rotted record for %q: %w", k, err)
		}
		newRefs[k] = ref{seg: newID, off: int64(len(buf)), n: len(frame)}
		buf = append(buf, frame...)
	}

	tmp := filepath.Join(s.opts.Dir, "compact.tmp")
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact tmp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("store: compact write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: compact fsync: %w", err)
	}
	final := filepath.Join(s.opts.Dir, segName(newID))
	if err := os.Rename(tmp, final); err != nil {
		f.Close()
		return fmt.Errorf("store: compact rename: %w", err)
	}
	if err := s.syncDir(); err != nil {
		f.Close()
		return err
	}

	// The rename is the commit point; everything after is cleanup.
	old := s.segs
	s.segs = map[int]*segment{newID: {id: newID, f: f, size: int64(len(buf))}}
	s.active = s.segs[newID]
	s.index = newRefs
	s.liveB = int64(len(buf))
	s.deadB = 0
	for id, seg := range old {
		seg.f.Close()
		os.Remove(filepath.Join(s.opts.Dir, segName(id)))
	}
	s.mCompactions.Add(1)
	s.updateGaugesLocked()
	s.opts.Logf("store: compacted %d records (%d bytes) into %s", len(keys), len(buf), segName(newID))
	return nil
}

// flusher is the write-behind loop: flush on a cadence, early when the
// pending table grows past FlushBytes.
func (s *Store) flusher() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.FlushEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		case <-s.flushKick:
		}
		s.mu.Lock()
		if !s.closed {
			if err := s.flushLocked(); err != nil {
				s.opts.Logf("store: background flush: %v", err)
			}
		}
		s.mu.Unlock()
	}
}

// Close flushes pending writes, fsyncs, and releases the store.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return ErrClosed
	}
	s.stopping = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	ferr := s.flushLocked()
	if s.active != nil {
		if err := s.active.f.Sync(); err != nil && ferr == nil {
			ferr = err
		}
	}
	s.closed = true
	s.closeFiles()
	return ferr
}

// Abandon releases the store WITHOUT flushing pending writes — the
// in-process stand-in for kill -9 in crash tests. Unflushed points are
// lost (and simply recomputed later); flushed frames stay on disk for
// the next Open to recover.
func (s *Store) Abandon() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopping {
		return
	}
	s.stopping = true
	close(s.stop)
	s.closed = true
	s.closeFiles()
}

func (s *Store) closeFiles() {
	for _, seg := range s.segs {
		seg.f.Close()
	}
	s.segs = map[int]*segment{}
	s.active = nil
}
