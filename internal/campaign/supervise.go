package campaign

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// Worker supervision: a panicking point computation must never take the
// daemon down, never stall other tenants, and never retry forever. The
// worker wrapper converts a panic into a typed *PanicError; the server
// re-dispatches the point with capped exponential backoff, and after
// PoisonStrikes consecutive panics the key is poison-quarantined — every
// later request for it gets the same stable *PoisonedError instead of
// another doomed retry.

// ErrSupervised is wrapped by every supervision verdict (panic, poison,
// deadline), so callers can errors.Is against one sentinel.
var ErrSupervised = errors.New("campaign: point supervision error")

// PanicError reports that computing a point panicked. It wraps
// ErrSupervised.
type PanicError struct {
	Key   string // spec.PointKey of the panicking point
	Value any    // the recovered panic value
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("campaign: computing point %s panicked: %v", e.Key, e.Value)
}

func (e *PanicError) Unwrap() error { return ErrSupervised }

// PoisonedError is the stable rejection for a point that panicked
// PoisonStrikes times: the service stops retrying and answers every
// request for the key with this error. It wraps ErrSupervised and the
// final panic.
type PoisonedError struct {
	Key     string
	Strikes int
	Cause   error // the last *PanicError
}

func (e *PoisonedError) Error() string {
	return fmt.Sprintf("campaign: point %s poisoned after %d panics: %v", e.Key, e.Strikes, e.Cause)
}

func (e *PoisonedError) Unwrap() error { return ErrSupervised }

// DeadlineError reports that a point's request deadline expired before
// a worker could (re)compute it. It wraps ErrSupervised.
type DeadlineError struct {
	Key string
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("campaign: point %s exceeded its request deadline", e.Key)
}

func (e *DeadlineError) Unwrap() error { return ErrSupervised }

// runPoint computes one point under panic isolation: a panic anywhere
// in the compute path surfaces as a typed *PanicError instead of
// killing the worker goroutine.
func (s *Server) runPoint(spec *Spec, point int) (val []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			val = nil
			err = &PanicError{Key: spec.PointKey(point), Value: r}
		}
	}()
	return s.compute(spec, point)
}

// redispatchDelay is the capped exponential backoff before retrying a
// panicked point: base, 2×base, 4×base, ... capped at 8×base.
func redispatchDelay(base time.Duration, strike int) time.Duration {
	d := base
	for i := 1; i < strike && d < 8*base; i++ {
		d *= 2
	}
	if d > 8*base {
		d = 8 * base
	}
	return d
}

// requeue returns a re-dispatched task to its tenant's queue once its
// backoff elapses. Runs from a time.AfterFunc timer; Drain counts the
// pending timer via pendingRedispatch so a drain cannot complete with a
// re-dispatch still in the air.
func (s *Server) requeue(t task) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pendingRedispatch--
	if s.closed {
		// The abort path answers this task's subscribers.
		return
	}
	s.tenants[t.tenant] = append(s.tenants[t.tenant], t)
	s.queued++
	s.queueDepth.Set(float64(s.queued))
	s.cond.Broadcast()
}

// retryAfterFor computes the 429 Retry-After: a load-proportional base
// plus a deterministic per-tenant jitter, so simultaneously rejected
// tenants do not all come back in the same second (a thundering-herd
// retry storm) while any one tenant always sees a stable value.
func retryAfterFor(tenant string, queued, workers int) int {
	h := fnv.New32a()
	h.Write([]byte(tenant))
	return 1 + queued/(workers*4) + int(h.Sum32()%5)
}
