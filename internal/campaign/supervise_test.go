package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// setCompute swaps the worker's compute function — the supervision
// test seam. Call before submitting any work.
func setCompute(s *Server, fn func(*Spec, int) ([]byte, error)) {
	s.mu.Lock()
	s.compute = fn
	s.mu.Unlock()
}

const panicSpec = `{"kind":"run","tenant":"mallory","workload":"vpic","nodes":1,"steps":1,"compute_seconds":3}`

// TestPanicPoisonTyped500 pins the poison-quarantine path: a spec whose
// compute panics every time burns its strikes, the campaign fails with
// a typed 500 naming the poison, and resubmitting gets the same stable
// answer without a single new compute attempt. Meanwhile another
// tenant's campaign on the same pool completes untouched — one
// tenant's panic never stalls the others.
func TestPanicPoisonTyped500(t *testing.T) {
	svc, ts := startService(t, Config{Workers: 2, PoisonStrikes: 3, RedispatchBackoff: time.Millisecond})
	var attempts atomic.Int64
	setCompute(svc, func(spec *Spec, i int) ([]byte, error) {
		if spec.Tenant == "mallory" {
			attempts.Add(1)
			panic(fmt.Sprintf("injected fault for %s", spec.PointKey(i)))
		}
		return ComputePoint(spec, i)
	})

	// The healthy tenant's campaign, submitted first and raced against
	// the panicking one.
	goodCh := make(chan []byte, 1)
	go func() {
		code, _, body := post(t, ts, "/v1/campaigns?wait=summary",
			`{"kind":"run","tenant":"alice","workload":"vpic","nodes":1,"steps":1,"compute_seconds":2}`)
		if code != http.StatusOK {
			t.Errorf("healthy tenant: status %d: %s", code, body)
		}
		goodCh <- body
	}()

	code, _, body := post(t, ts, "/v1/campaigns?wait=summary", panicSpec)
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking campaign: status %d, want 500: %s", code, body)
	}
	var fail map[string]string
	if err := json.Unmarshal(body, &fail); err != nil {
		t.Fatalf("500 body is not typed JSON: %s", body)
	}
	if fail["kind"] != "poisoned" {
		t.Fatalf("failure kind = %q, want poisoned: %s", fail["kind"], body)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("compute attempted %d times, want exactly PoisonStrikes=3", got)
	}
	if c := counter(t, svc, "campaign.poisoned"); c != 1 {
		t.Errorf("campaign.poisoned = %d, want 1", c)
	}
	if c := counter(t, svc, "campaign.redispatches"); c != 2 {
		t.Errorf("campaign.redispatches = %d, want 2 (strikes 1 and 2 retried)", c)
	}

	if body := <-goodCh; len(body) == 0 {
		t.Error("healthy tenant's summary came back empty")
	}

	// Stable rejection: the same campaign answers identically, forever,
	// with zero new compute attempts.
	before := attempts.Load()
	code, _, again := post(t, ts, "/v1/campaigns?wait=summary", panicSpec)
	if code != http.StatusInternalServerError || !bytes.Equal(again, body) {
		t.Errorf("resubmit: status %d body %s, want identical stable 500", code, again)
	}
	if attempts.Load() != before {
		t.Errorf("resubmitting a poisoned spec recomputed it (%d -> %d attempts)", before, attempts.Load())
	}
}

// TestRedispatchThenSucceed pins the capped-backoff retry: a point that
// panics twice and then succeeds must deliver the correct bytes, with
// the strikes wiped for the next time.
func TestRedispatchThenSucceed(t *testing.T) {
	svc, ts := startService(t, Config{Workers: 2, PoisonStrikes: 5, RedispatchBackoff: time.Millisecond})
	var attempts atomic.Int64
	setCompute(svc, func(spec *Spec, i int) ([]byte, error) {
		if attempts.Add(1) <= 2 {
			panic("transient fault")
		}
		return ComputePoint(spec, i)
	})

	code, _, body := post(t, ts, "/v1/campaigns?wait=summary", panicSpec)
	if code != http.StatusOK {
		t.Fatalf("status %d after transient panics: %s", code, body)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (two panics, one success)", got)
	}
	if c := counter(t, svc, "campaign.redispatches"); c != 2 {
		t.Errorf("campaign.redispatches = %d, want 2", c)
	}
	if c := counter(t, svc, "campaign.poisoned"); c != 0 {
		t.Errorf("campaign.poisoned = %d, want 0", c)
	}
	svc.mu.Lock()
	stuck := len(svc.strikes)
	svc.mu.Unlock()
	if stuck != 0 {
		t.Errorf("%d strike entries left after success — stale state would poison a healthy key", stuck)
	}
}

// TestDeadlineExpired pins per-request deadline propagation on a fake
// clock: work admitted under a deadline that passes before any worker
// reaches it fails with a typed deadline 500, deterministically.
func TestDeadlineExpired(t *testing.T) {
	svc, ts := startService(t, Config{Workers: 1, PointDeadline: time.Second})
	var clock atomic.Int64 // nanoseconds past base
	base := time.UnixMicro(1_000_000)
	svc.mu.Lock()
	svc.nowFn = func() time.Time { return base.Add(time.Duration(clock.Load())) }
	svc.mu.Unlock()

	svc.Pause() // hold the queue so the deadline can pass deterministically
	code, _, body := post(t, ts, "/v1/campaigns", panicSpec)
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d: %s", code, body)
	}
	var st statusJSON
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	clock.Store(int64(2 * time.Second)) // now > admission deadline
	svc.Resume()

	code, res := get(t, ts, "/v1/campaigns/"+st.ID+"/result")
	if code != http.StatusInternalServerError {
		t.Fatalf("result: status %d, want 500: %s", code, res)
	}
	var fail map[string]string
	if err := json.Unmarshal(res, &fail); err != nil || fail["kind"] != "deadline" {
		t.Fatalf("failure kind = %q, want deadline: %s", fail["kind"], res)
	}
	if c := counter(t, svc, "campaign.deadline.expired"); c != 1 {
		t.Errorf("campaign.deadline.expired = %d, want 1", c)
	}
}

// TestRetryAfterJitterDeterministic pins the 429 jitter function:
// stable per tenant, load-proportional, and actually spread across
// tenant names.
func TestRetryAfterJitterDeterministic(t *testing.T) {
	if a, b := retryAfterFor("alice", 0, 4), retryAfterFor("alice", 0, 4); a != b {
		t.Fatalf("jitter not deterministic: %d vs %d", a, b)
	}
	if base, loaded := retryAfterFor("alice", 0, 4), retryAfterFor("alice", 64, 4); loaded-base != 4 {
		t.Errorf("load component: base %d loaded %d, want +4", base, loaded)
	}
	distinct := make(map[int]bool)
	for i := 0; i < 8; i++ {
		distinct[retryAfterFor(fmt.Sprintf("tenant-%d", i), 0, 4)] = true
	}
	if len(distinct) < 3 {
		t.Errorf("8 tenants landed on %d distinct Retry-After values, want ≥3", len(distinct))
	}
}

// TestEventsTerminalRecord pins the NDJSON terminal frame on the happy
// path: the stream's last record is final with state "complete".
func TestEventsTerminalRecord(t *testing.T) {
	_, ts := startService(t, Config{Workers: 2})
	code, _, body := post(t, ts, "/v1/campaigns", `{"kind":"run","tenant":"alice","workload":"vpic","nodes":1,"steps":1,"compute_seconds":1}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("POST: status %d", code)
	}
	var st statusJSON
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	code, evBody := get(t, ts, "/v1/campaigns/"+st.ID+"/events")
	if code != http.StatusOK {
		t.Fatalf("events: status %d", code)
	}
	lines := strings.Split(strings.TrimSpace(string(evBody)), "\n")
	var last Event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("last event line: %v (%s)", err, lines[len(lines)-1])
	}
	if !last.Final || last.State != "complete" {
		t.Fatalf("terminal record = %+v, want final complete", last)
	}
	for _, l := range lines[:len(lines)-1] {
		var ev Event
		if err := json.Unmarshal([]byte(l), &ev); err != nil || ev.Final {
			t.Fatalf("non-terminal line marked final: %s", l)
		}
	}
}

// TestEventsAbortedTerminalRecord pins the drain-mid-campaign contract:
// when the daemon shuts down with points still queued, the stream ends
// with a typed "aborted" terminal record — distinguishable from both a
// completed campaign and a cut-off connection — and the result endpoint
// answers with a typed 503.
func TestEventsAbortedTerminalRecord(t *testing.T) {
	svc, ts := startService(t, Config{Workers: 1})
	svc.Pause() // the point never dispatches
	code, _, body := post(t, ts, "/v1/campaigns", panicSpec)
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d", code)
	}
	var st statusJSON
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	evCh := make(chan []byte, 1)
	go func() {
		_, evBody := get(t, ts, "/v1/campaigns/"+st.ID+"/events")
		evCh <- evBody
	}()
	// Let the stream attach, then kill the server out from under it.
	time.Sleep(20 * time.Millisecond)
	svc.Close()

	evBody := <-evCh
	lines := strings.Split(strings.TrimSpace(string(evBody)), "\n")
	var last Event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("last event line: %v (%q)", err, string(evBody))
	}
	if !last.Final || last.State != "aborted" || last.Done != 0 || last.Total != 1 {
		t.Fatalf("terminal record = %+v, want final aborted 0/1", last)
	}

	code, res := get(t, ts, "/v1/campaigns/"+st.ID+"/result")
	if code != http.StatusServiceUnavailable || !bytes.Contains(res, []byte(`"kind":"aborted"`)) {
		t.Fatalf("result after abort: status %d body %s, want typed 503", code, res)
	}
	code, stBody := get(t, ts, "/v1/campaigns/"+st.ID)
	if code != http.StatusOK || !bytes.Contains(stBody, []byte(`"state":"aborted"`)) {
		t.Fatalf("status after abort: %d %s, want state aborted", code, stBody)
	}
}
