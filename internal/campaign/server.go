package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"asyncio/internal/campaign/store"
	"asyncio/internal/metrics"
)

// Config sizes the service.
type Config struct {
	// Workers is the simulation worker pool size (default 2).
	Workers int
	// QueueDepth bounds the admission queue: the total simulation
	// points queued but not yet dispatched (default 256). A POST whose
	// uncached points would overflow it is rejected with 429.
	QueueDepth int
	// CacheSize bounds the point result LRU (default 1024 entries).
	CacheSize int
	// Store, when set, persists computed points behind the LRU: worker
	// results are written through, and LRU misses fall back to it. The
	// server takes over reads/writes but not the store's lifecycle —
	// the caller still owns Open and Close.
	Store *store.Store
	// StoreRecovery, when set, is the report from the store's Open scan,
	// surfaced by /readyz so operators can see what a restart recovered.
	StoreRecovery *store.RecoveryReport
	// PointDeadline bounds how long a point may wait plus compute before
	// its campaign gets a typed DeadlineError (0 = no deadline). On a
	// single-flight join the flight keeps the latest deadline among its
	// subscribers.
	PointDeadline time.Duration
	// PoisonStrikes is how many panics a point is allowed before it is
	// poison-quarantined instead of retried (default 3).
	PoisonStrikes int
	// RedispatchBackoff is the base backoff before re-dispatching a
	// panicked point (default 5ms, doubling per strike, capped at 8×).
	RedispatchBackoff time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.PoisonStrikes <= 0 {
		c.PoisonStrikes = 3
	}
	if c.RedispatchBackoff <= 0 {
		c.RedispatchBackoff = 5 * time.Millisecond
	}
	return c
}

// Event is one progress record of a campaign, streamed as NDJSON from
// the events endpoint.
// A stream always ends with exactly one terminal record (Final true,
// State complete/failed/aborted) — its absence means the stream was cut
// off mid-campaign, not that the campaign ended.
type Event struct {
	Seq   int    `json:"seq"`
	Point int    `json:"point"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Err   string `json:"err,omitempty"`
	Final bool   `json:"final,omitempty"`
	State string `json:"state,omitempty"`
}

// Campaign is one admitted scenario: a canonical spec plus the
// per-point results as they land.
type Campaign struct {
	id   string
	spec *Spec

	mu       sync.Mutex
	cond     *sync.Cond // broadcast on every event append
	results  [][]byte   // index-ordered point payloads
	done     int
	firstErr error
	events   []Event
	finished chan struct{} // closed when done == len(results)
	aborted  chan struct{} // closed when the server shut down first
}

func newCampaign(id string, spec *Spec, total int) *Campaign {
	c := &Campaign{id: id, spec: spec, results: make([][]byte, total),
		finished: make(chan struct{}), aborted: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *Campaign) abortedNow() bool {
	select {
	case <-c.aborted:
		return true
	default:
		return false
	}
}

// abort marks an unfinished campaign as cut off by server shutdown:
// result waiters get a typed 503 and event streams emit an "aborted"
// terminal record. A finished campaign is left alone.
func (c *Campaign) abort() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done == len(c.results) || c.abortedNow() {
		return
	}
	close(c.aborted)
	c.cond.Broadcast()
}

// deliver records point i's result. Safe to call from any worker; the
// last point closes finished.
func (c *Campaign) deliver(i int, val []byte, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deliverLocked(i, val, err)
}

func (c *Campaign) deliverLocked(i int, val []byte, err error) {
	c.results[i] = val
	c.done++
	if err != nil && c.firstErr == nil {
		c.firstErr = err
	}
	ev := Event{Seq: len(c.events), Point: i, Done: c.done, Total: len(c.results)}
	if err != nil {
		ev.Err = err.Error()
	}
	c.events = append(c.events, ev)
	c.cond.Broadcast()
	if c.done == len(c.results) {
		close(c.finished)
	}
}

func (c *Campaign) state() string {
	select {
	case <-c.finished:
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.firstErr != nil {
			return "failed"
		}
		return "complete"
	default:
		if c.abortedNow() {
			return "aborted"
		}
		return "running"
	}
}

// Dispatch is one scheduler decision, recorded for fairness assertions:
// which tenant's task was handed to a worker, how many tasks that
// tenant still had queued afterwards, and how many remained in total.
type Dispatch struct {
	Tenant  string
	Pending int
	Queued  int
}

// task is one queued simulation point.
type task struct {
	key    string
	tenant string
}

// flight is the single-flight record of one point being computed: every
// campaign wanting the same point subscribes instead of re-queueing it.
type flight struct {
	spec     *Spec // canonical spec the point is computed under
	point    int
	subs     []subscriber
	deadline time.Time // zero = no deadline; joins extend to the max
}

type subscriber struct {
	c     *Campaign
	point int
}

// Server is the campaign service. Construct with NewServer, mount
// Handler on an http.Server, and stop with Shutdown (drain) or Close
// (abrupt).
type Server struct {
	cfg   Config
	reg   *metrics.Registry
	cache *Cache
	start time.Time

	// compute and nowFn are the worker's seams: production uses
	// ComputePoint and time.Now; supervision tests inject panicking
	// computes and fake clocks.
	compute func(*Spec, int) ([]byte, error)
	nowFn   func() time.Time

	admitted, rejected *metrics.Counter
	hits, misses       *metrics.Counter
	served             *metrics.Counter
	storeHits          *metrics.Counter
	panics             *metrics.Counter
	redispatched       *metrics.Counter
	poisonedCtr        *metrics.Counter
	deadlineExpired    *metrics.Counter
	queueDepth         *metrics.Gauge
	inflight           *metrics.Gauge

	mu                sync.Mutex
	cond              *sync.Cond // dispatch wakeups: new work, resume, close
	campaigns         map[string]*Campaign
	tenants           map[string][]task // per-tenant FIFO
	ring              []string          // round-robin tenant order (first-seen)
	next              int               // ring cursor
	flights           map[string]*flight
	queued            int              // total queued tasks across tenants
	running           int              // tasks currently on a worker
	pendingRedispatch int              // panicked tasks waiting out their backoff
	strikes           map[string]int   // consecutive panics per point key
	poisoned          map[string]error // poison-quarantined keys → stable error
	paused            bool
	draining          bool
	closed            bool
	log               []Dispatch

	wg sync.WaitGroup
}

// NewServer starts the worker pool and returns the service.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	start := time.Now()
	s := &Server{
		cfg:       cfg,
		reg:       metrics.NewRegistryWithNow(func() time.Duration { return time.Since(start) }),
		cache:     NewCache(cfg.CacheSize),
		start:     start,
		compute:   ComputePoint,
		nowFn:     time.Now,
		campaigns: make(map[string]*Campaign),
		tenants:   make(map[string][]task),
		flights:   make(map[string]*flight),
		strikes:   make(map[string]int),
		poisoned:  make(map[string]error),
	}
	s.cond = sync.NewCond(&s.mu)
	s.admitted = s.reg.Counter("campaign.admitted")
	s.rejected = s.reg.Counter("campaign.rejected")
	s.hits = s.reg.Counter("campaign.cache.hits")
	s.misses = s.reg.Counter("campaign.cache.misses")
	s.served = s.reg.Counter("campaign.points.served")
	s.storeHits = s.reg.Counter("campaign.store.hits")
	s.panics = s.reg.Counter("campaign.panics")
	s.redispatched = s.reg.Counter("campaign.redispatches")
	s.poisonedCtr = s.reg.Counter("campaign.poisoned")
	s.deadlineExpired = s.reg.Counter("campaign.deadline.expired")
	s.queueDepth = s.reg.Gauge("campaign.queue.depth")
	s.inflight = s.reg.Gauge("campaign.workers.inflight")
	if st := cfg.Store; st != nil {
		st.Instrument(s.reg)
		s.cache.SetFallback(func(key string) ([]byte, bool) {
			val, ok, err := st.Get(key)
			if err != nil || !ok {
				// A read error (rot, I/O) is a miss: recompute rather
				// than serve unverified bytes. The store counts it.
				return nil, false
			}
			if ValidatePointPayload(val) != nil {
				return nil, false
			}
			s.storeHits.Add(1)
			return val, true
		})
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics exposes the self-instrumentation registry (tests assert cache
// hit ratios and drain invariants against it).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Pause stops dispatching queued work to workers; already-running
// points finish. A deterministic hook for tests and operators.
func (s *Server) Pause() {
	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
}

// Resume restarts dispatch after Pause.
func (s *Server) Resume() {
	s.mu.Lock()
	s.paused = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// DispatchLog returns a copy of the scheduler's dispatch decisions.
func (s *Server) DispatchLog() []Dispatch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Dispatch(nil), s.log...)
}

// Drain stops admission (new POSTs get 503) and waits until every
// queued and running point has completed or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	for {
		s.mu.Lock()
		// A panicked task waiting out its re-dispatch backoff is neither
		// queued nor running; pendingRedispatch keeps the drain honest.
		idle := s.queued == 0 && s.running == 0 && s.pendingRedispatch == 0
		s.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Close stops the worker pool without waiting for queued work and
// blocks until the workers exit. Campaigns with undispatched points are
// aborted: their result waiters get a typed 503 and their event streams
// a terminal "aborted" record, so clients can tell a cut-off campaign
// from a finished one. Use Shutdown for a clean stop.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	camps := make([]*Campaign, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		camps = append(camps, c)
	}
	s.mu.Unlock()
	s.wg.Wait()
	for _, c := range camps {
		c.abort()
	}
}

// Shutdown drains then closes.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.Drain(ctx)
	s.Close()
	return err
}

// worker pulls tasks round-robin across tenants and computes them under
// supervision: a panic is isolated, re-dispatched with capped backoff,
// and poison-quarantined after PoisonStrikes; an expired deadline gets
// a typed error instead of a compute.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && (s.paused || s.queued == 0) {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		t, ok := s.nextTaskLocked()
		if !ok {
			s.mu.Unlock()
			continue
		}
		f := s.flights[t.key]
		deadline := f.deadline
		s.running++
		s.inflight.Set(float64(s.running))
		s.mu.Unlock()

		var val []byte
		var err error
		if !deadline.IsZero() && s.nowFn().After(deadline) {
			s.deadlineExpired.Add(1)
			err = &DeadlineError{Key: t.key}
		} else {
			val, err = s.runPoint(f.spec, f.point)
		}

		var pe *PanicError
		if errors.As(err, &pe) {
			s.panics.Add(1)
			s.mu.Lock()
			s.strikes[t.key]++
			strike := s.strikes[t.key]
			retryable := strike < s.cfg.PoisonStrikes && !s.closed
			backoff := redispatchDelay(s.cfg.RedispatchBackoff, strike)
			if retryable && !deadline.IsZero() && s.nowFn().Add(backoff).After(deadline) {
				// No room for another attempt before the deadline.
				retryable = false
				s.deadlineExpired.Add(1)
				err = &DeadlineError{Key: t.key}
			}
			if retryable {
				// Keep the flight open and return the task to its queue
				// after the backoff — the "restart the worker" move, with
				// the strike count standing in for supervisor state.
				s.pendingRedispatch++
				s.redispatched.Add(1)
				s.running--
				s.inflight.Set(float64(s.running))
				s.mu.Unlock()
				time.AfterFunc(backoff, func() { s.requeue(t) })
				continue
			}
			if strike >= s.cfg.PoisonStrikes {
				// Strikes exhausted: quarantine the key so no one ever
				// retries it again, and fail with a stable typed error.
				perr := &PoisonedError{Key: t.key, Strikes: strike, Cause: pe}
				s.poisoned[t.key] = perr
				s.poisonedCtr.Add(1)
				err = perr
			}
			s.mu.Unlock()
		}
		if err == nil {
			s.cache.Put(t.key, val)
			if st := s.cfg.Store; st != nil {
				st.Put(t.key, val)
			}
			s.mu.Lock()
			delete(s.strikes, t.key)
			s.mu.Unlock()
		}

		s.mu.Lock()
		delete(s.flights, t.key)
		s.running--
		s.inflight.Set(float64(s.running))
		s.served.Add(1)
		subs := f.subs
		s.mu.Unlock()
		for _, sub := range subs {
			sub.c.deliver(sub.point, val, err)
		}
	}
}

// nextTaskLocked pops the next task fairly: round-robin across tenants
// in first-seen order, FIFO within a tenant. Records the decision.
func (s *Server) nextTaskLocked() (task, bool) {
	for j := 0; j < len(s.ring); j++ {
		name := s.ring[(s.next+j)%len(s.ring)]
		q := s.tenants[name]
		if len(q) == 0 {
			continue
		}
		t := q[0]
		s.tenants[name] = q[1:]
		s.next = (s.next + j + 1) % len(s.ring)
		s.queued--
		s.queueDepth.Set(float64(s.queued))
		s.log = append(s.log, Dispatch{Tenant: name, Pending: len(q) - 1, Queued: s.queued})
		return t, true
	}
	return task{}, false
}

// submitResult is what a POST resolves to before any waiting.
type submitResult struct {
	c      *Campaign
	status int // http.StatusAccepted or StatusOK (already known)
}

var errDraining = errors.New("draining")

// admissionError carries the 429 backpressure decision.
type admissionError struct{ retryAfter int }

func (e *admissionError) Error() string {
	return fmt.Sprintf("queue full, retry after %ds", e.retryAfter)
}

// submit admits one canonical spec: resolves every point against the
// cache and in-flight work, enqueues the rest (all or nothing), and
// returns the campaign.
func (s *Server) submit(spec *Spec) (*submitResult, error) {
	total, err := spec.PointCount()
	if err != nil {
		return nil, &SpecError{Field: "sweep", Msg: err.Error()}
	}
	id := spec.ID()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		s.rejected.Add(1)
		return nil, errDraining
	}
	if c, ok := s.campaigns[id]; ok {
		// Same tenant, same content: the identical campaign. Every
		// point is already resolved or in flight — all hits, no work.
		s.admitted.Add(1)
		s.hits.Add(int64(total))
		s.tenantServedLocked(spec.Tenant, total)
		return &submitResult{c: c, status: http.StatusOK}, nil
	}

	c := newCampaign(id, spec, total)
	var deadline time.Time
	if s.cfg.PointDeadline > 0 {
		deadline = s.nowFn().Add(s.cfg.PointDeadline)
	}
	type pending struct {
		key   string
		point int
	}
	var misses []pending
	hits := 0
	for i := 0; i < total; i++ {
		key := spec.PointKey(i)
		if perr, ok := s.poisoned[key]; ok {
			// Poison-quarantined: the stable rejection, never a retry.
			c.deliver(i, nil, perr)
			hits++
			continue
		}
		if val, ok := s.cache.Get(key); ok {
			c.deliver(i, val, nil)
			hits++
			continue
		}
		if f, ok := s.flights[key]; ok {
			// Another campaign is already computing this point: join
			// its flight. Counted as a hit — no new simulation work.
			// The flight keeps the latest deadline among its joiners.
			f.subs = append(f.subs, subscriber{c: c, point: i})
			if !f.deadline.IsZero() && (deadline.IsZero() || deadline.After(f.deadline)) {
				f.deadline = deadline
			}
			hits++
			continue
		}
		misses = append(misses, pending{key: key, point: i})
	}
	if s.queued+len(misses) > s.cfg.QueueDepth {
		// All or nothing: reject before registering anything, so a 429
		// leaves no partial campaign behind.
		s.rejected.Add(1)
		return nil, &admissionError{retryAfter: retryAfterFor(spec.Tenant, s.queued, s.cfg.Workers)}
	}
	s.campaigns[id] = c
	if _, ok := s.tenants[spec.Tenant]; !ok {
		s.tenants[spec.Tenant] = nil
		s.ring = append(s.ring, spec.Tenant)
	}
	for _, p := range misses {
		s.flights[p.key] = &flight{spec: spec, point: p.point,
			subs: []subscriber{{c: c, point: p.point}}, deadline: deadline}
		s.tenants[spec.Tenant] = append(s.tenants[spec.Tenant], task{key: p.key, tenant: spec.Tenant})
	}
	s.queued += len(misses)
	s.queueDepth.Set(float64(s.queued))
	s.admitted.Add(1)
	s.hits.Add(int64(hits))
	s.misses.Add(int64(len(misses)))
	s.tenantServedLocked(spec.Tenant, total)
	s.cond.Broadcast()
	status := http.StatusAccepted
	if len(misses) == 0 && hits == total {
		status = http.StatusOK
	}
	return &submitResult{c: c, status: status}, nil
}

// tenantServedLocked credits points requested by a tenant (served from
// cache or scheduled on its behalf).
func (s *Server) tenantServedLocked(tenant string, n int) {
	s.reg.Counter("campaign.tenant.served." + tenant).Add(int64(n))
}

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metricz", s.handleMetricz)
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/campaigns/{id}/result", s.handleResult)
	return mux
}

// handleHealth is liveness: the process is up and serving HTTP. It
// stays 200 through a drain — kubelet-style probes must not kill a
// daemon that is gracefully finishing its queue. Readiness (should this
// instance receive new work?) lives at /readyz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReady is readiness: 200 with store/recovery detail while
// accepting work, 503 once draining or closed.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	unready := s.draining || s.closed
	s.mu.Unlock()
	if unready {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	resp := map[string]any{"status": "ready"}
	if st := s.cfg.Store; st != nil {
		stats := st.Stats()
		resp["store"] = map[string]any{
			"points":     stats.Points,
			"segments":   stats.Segments,
			"live_bytes": stats.LiveBytes,
		}
		if rep := s.cfg.StoreRecovery; rep != nil {
			resp["recovery"] = rep.Summary()
			resp["recovery_clean"] = rep.Clean()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	s.reg.WriteCSV(w, "asyncio-serve")
}

// statusJSON is the campaign status wire form.
type statusJSON struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Tenant string `json:"tenant"`
	Total  int    `json:"total"`
	Done   int    `json:"done"`
	State  string `json:"state"`
	Error  string `json:"error,omitempty"`
}

func (c *Campaign) statusJSON() statusJSON {
	c.mu.Lock()
	done := c.done
	ferr := c.firstErr
	c.mu.Unlock()
	st := statusJSON{ID: c.id, Kind: c.spec.Kind, Tenant: c.spec.Tenant,
		Total: len(c.results), Done: done, State: c.state()}
	if ferr != nil {
		st.Error = ferr.Error()
	}
	return st
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxSpecBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := DecodeSpec(body)
	if err != nil {
		var se *SpecError
		if errors.As(err, &se) {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": se.Msg, "field": se.Field})
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.submit(spec)
	if err != nil {
		var ae *admissionError
		switch {
		case errors.As(err, &ae):
			w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfter))
			http.Error(w, ae.Error(), http.StatusTooManyRequests)
		case errors.Is(err, errDraining):
			http.Error(w, "server is draining", http.StatusServiceUnavailable)
		default:
			var se *SpecError
			if errors.As(err, &se) {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": se.Msg, "field": se.Field})
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	if wait := r.URL.Query().Get("wait"); wait != "" {
		select {
		case <-res.c.finished:
		case <-res.c.aborted:
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]string{"error": "campaign aborted: server shut down", "kind": "aborted"})
			return
		case <-r.Context().Done():
			http.Error(w, "client went away", http.StatusRequestTimeout)
			return
		}
		format := wait
		if format == "1" || format == "true" {
			format = ""
		}
		s.serveResult(w, res.c, format)
		return
	}
	writeJSON(w, res.status, res.c.statusJSON())
}

func (s *Server) campaignFor(w http.ResponseWriter, r *http.Request) *Campaign {
	id := r.PathValue("id")
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		http.Error(w, "unknown campaign", http.StatusNotFound)
		return nil
	}
	return c
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	c := s.campaignFor(w, r)
	if c == nil {
		return
	}
	writeJSON(w, http.StatusOK, c.statusJSON())
}

// handleEvents streams the campaign's progress as NDJSON, one event per
// completed point, and closes when the campaign finishes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	c := s.campaignFor(w, r)
	if c == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	flusher, _ := w.(http.Flusher)
	// A cond.Wait cannot watch a context; this watcher turns client
	// disconnect into a broadcast so the stream loop can re-check.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-r.Context().Done():
		case <-done:
		}
		c.cond.Broadcast()
	}()
	enc := json.NewEncoder(w)
	next := 0
	for {
		c.mu.Lock()
		for next >= len(c.events) && c.done < len(c.results) && !c.abortedNow() && r.Context().Err() == nil {
			c.cond.Wait()
		}
		evs := c.events[next:]
		next = len(c.events)
		done, total := c.done, len(c.results)
		ferr := c.firstErr
		c.mu.Unlock()
		if r.Context().Err() != nil {
			return
		}
		for _, ev := range evs {
			enc.Encode(ev)
		}
		if done == total || c.abortedNow() {
			// Exactly one terminal record ends every stream the server
			// finishes on purpose; a stream without one was cut off.
			state := "complete"
			switch {
			case done < total:
				state = "aborted"
			case ferr != nil:
				state = "failed"
			}
			enc.Encode(Event{Seq: next, Point: -1, Done: done, Total: total, Final: true, State: state})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleResult blocks until the campaign finishes, then serves its
// result in the requested format.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	c := s.campaignFor(w, r)
	if c == nil {
		return
	}
	select {
	case <-c.finished:
	case <-c.aborted:
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": "campaign aborted: server shut down", "kind": "aborted"})
		return
	case <-r.Context().Done():
		http.Error(w, "client went away", http.StatusRequestTimeout)
		return
	}
	s.serveResult(w, c, r.URL.Query().Get("format"))
}

func (s *Server) serveResult(w http.ResponseWriter, c *Campaign, format string) {
	c.mu.Lock()
	ferr := c.firstErr
	payloads := c.results
	c.mu.Unlock()
	if ferr != nil {
		// Supervision failures are typed on the wire: clients (and the
		// chaos harness) distinguish a poisoned spec from a transient
		// panic or a missed deadline without parsing prose.
		if errors.Is(ferr, ErrSupervised) {
			kind := "panic"
			var poe *PoisonedError
			var dle *DeadlineError
			switch {
			case errors.As(ferr, &poe):
				kind = "poisoned"
			case errors.As(ferr, &dle):
				kind = "deadline"
			}
			writeJSON(w, http.StatusInternalServerError,
				map[string]string{"error": ferr.Error(), "kind": kind})
			return
		}
		http.Error(w, "campaign failed: "+ferr.Error(), http.StatusInternalServerError)
		return
	}
	body, ctype, err := renderResult(c.spec, payloads, format)
	if err != nil {
		var se *SpecError
		if errors.As(err, &se) {
			http.Error(w, se.Error(), http.StatusBadRequest)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Write(body)
}

// renderResult assembles a finished campaign's payloads into the
// requested format. Pure: same payloads and format, same bytes.
func renderResult(spec *Spec, payloads [][]byte, format string) ([]byte, string, error) {
	const (
		textType = "text/plain; charset=utf-8"
		jsonType = "application/json; charset=utf-8"
		csvType  = "text/csv; charset=utf-8"
	)
	if spec.Kind == "sweep" {
		switch format {
		case "", "table":
			b, err := AssembleSweepTable(spec, payloads)
			return b, textType, err
		case "json":
			b, err := sweepPointsJSON(spec, payloads)
			return b, jsonType, err
		case "csv":
			b, err := sweepPointsCSV(payloads)
			return b, csvType, err
		}
		return nil, "", specErrf("format", "unknown sweep format %q (want table, json, or csv)", format)
	}
	bundle, err := DecodeBundle(payloads[0])
	if err != nil {
		return nil, "", err
	}
	switch format {
	case "", "summary":
		return bundle[ArtifactSummary], textType, nil
	case "trace":
		return bundle[ArtifactTrace], csvType, nil
	case "metrics":
		return bundle[ArtifactMetrics], csvType, nil
	case "perfetto":
		return bundle[ArtifactPerfetto], jsonType, nil
	case "critpath":
		if b, ok := bundle[ArtifactCritPath]; ok {
			return b, jsonType, nil
		}
		return nil, "", errors.New("campaign: run carried no critical-path profile")
	case "bundle":
		return payloads[0], jsonType, nil
	}
	return nil, "", specErrf("format", "unknown run format %q (want summary, trace, metrics, perfetto, critpath, or bundle)", format)
}
