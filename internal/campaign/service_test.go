package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"asyncio/internal/experiments"
)

// startService spins up an in-process server over a loopback listener.
func startService(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := NewServer(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading POST %s body: %v", path, err)
	}
	return resp.StatusCode, resp.Header, b
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading GET %s body: %v", path, err)
	}
	return resp.StatusCode, b
}

func counter(t *testing.T, s *Server, name string) int64 {
	t.Helper()
	c := s.Metrics().FindCounter(name)
	if c == nil {
		return 0
	}
	return c.Value()
}

const fig3aSpec = `{"kind":"sweep","sweep":"fig3a","scale":"reduced"}`

// The same campaign with fields reordered, whitespace scattered, and
// defaults spelled out — must canonicalize to the identical content.
const fig3aPermuted = `
	{
	  "scale":   "reduced",
	  "tenant":  "default",
	  "sweep":   "fig3a",
	  "shards":  "1",
	  "kind":    "sweep"
	}
`

// TestServiceSweepDeterminism is the service-level contract: the same
// campaign served twice (second time from cache), submitted as a
// permuted duplicate, or computed by cold servers with different worker
// counts, always yields byte-identical bodies — and those bytes are
// exactly what the CLI sweep path renders.
func TestServiceSweepDeterminism(t *testing.T) {
	// The CLI path: what `asyncio-bench -exp fig3a -scale reduced` prints.
	tab, err := experiments.Registry()["fig3a"](experiments.ReducedScale())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := tab.Render(&want); err != nil {
		t.Fatal(err)
	}

	svc, ts := startService(t, Config{Workers: 4})

	code, _, first := post(t, ts, "/v1/campaigns?wait=table", fig3aSpec)
	if code != http.StatusOK {
		t.Fatalf("first POST: status %d: %s", code, first)
	}
	if !bytes.Equal(first, want.Bytes()) {
		t.Errorf("served table drifted from the CLI path.\n--- CLI ---\n%s\n--- served ---\n%s", want.Bytes(), first)
	}
	misses := counter(t, svc, "campaign.cache.misses")
	if misses == 0 {
		t.Error("first pass should have missed the cache")
	}

	// Second pass: identical spec, must come from cache with zero new
	// misses and identical bytes.
	code, _, second := post(t, ts, "/v1/campaigns?wait=table", fig3aSpec)
	if code != http.StatusOK {
		t.Fatalf("second POST: status %d: %s", code, second)
	}
	if !bytes.Equal(first, second) {
		t.Error("cached pass differs from cold pass")
	}
	if got := counter(t, svc, "campaign.cache.misses"); got != misses {
		t.Errorf("second pass recomputed: misses %d -> %d", misses, got)
	}

	// Permuted duplicate: same canonical content, same campaign ID,
	// same bytes.
	code, _, permuted := post(t, ts, "/v1/campaigns?wait=table", fig3aPermuted)
	if code != http.StatusOK {
		t.Fatalf("permuted POST: status %d: %s", code, permuted)
	}
	if !bytes.Equal(first, permuted) {
		t.Error("permuted duplicate spec produced different bytes")
	}

	// Cold servers at different worker counts: completion order differs,
	// assembled bytes must not.
	for _, workers := range []int{1, 8} {
		_, cold := startService(t, Config{Workers: workers})
		code, _, body := post(t, cold, "/v1/campaigns?wait=table", fig3aSpec)
		if code != http.StatusOK {
			t.Fatalf("workers=%d POST: status %d: %s", workers, code, body)
		}
		if !bytes.Equal(first, body) {
			t.Errorf("workers=%d produced different bytes", workers)
		}
	}
}

// TestServiceCacheHitRatio pins the acceptance criterion: a
// duplicate-heavy campaign stream keeps the cache hit ratio above 0.9,
// asserted against the self-instrumentation registry.
func TestServiceCacheHitRatio(t *testing.T) {
	svc, ts := startService(t, Config{Workers: 2})
	for i := 0; i < 20; i++ {
		code, _, body := post(t, ts, "/v1/campaigns?wait=table", fig3aSpec)
		if code != http.StatusOK {
			t.Fatalf("POST %d: status %d: %s", i, code, body)
		}
	}
	hits := counter(t, svc, "campaign.cache.hits")
	misses := counter(t, svc, "campaign.cache.misses")
	ratio := float64(hits) / float64(hits+misses)
	if ratio <= 0.9 {
		t.Errorf("cache hit ratio %.3f (hits %d, misses %d), want > 0.9", ratio, hits, misses)
	}
}

// TestServiceRunKindDeterminism covers the run kind: every artifact in
// the bundle is byte-identical between a cold computation and the
// cached replay, and the summary names the run.
func TestServiceRunKindDeterminism(t *testing.T) {
	_, ts := startService(t, Config{Workers: 2})
	spec := `{"kind":"run","workload":"vpic","nodes":1,"steps":2,"mode":"async","compute_seconds":1}`

	code, _, cold := post(t, ts, "/v1/campaigns?wait=bundle", spec)
	if code != http.StatusOK {
		t.Fatalf("cold POST: status %d: %s", code, cold)
	}
	code, _, cached := post(t, ts, "/v1/campaigns?wait=bundle", spec)
	if code != http.StatusOK {
		t.Fatalf("cached POST: status %d: %s", code, cached)
	}
	if !bytes.Equal(cold, cached) {
		t.Error("run bundle differs between cold and cached serve")
	}
	bundle, err := DecodeBundle(cold)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{ArtifactTrace, ArtifactMetrics, ArtifactPerfetto, ArtifactCritPath, ArtifactSummary} {
		if len(bundle[name]) == 0 {
			t.Errorf("bundle artifact %s is missing or empty", name)
		}
	}
	if !bytes.Contains(bundle[ArtifactSummary], []byte("vpic on summit")) {
		t.Errorf("summary does not name the run: %q", bundle[ArtifactSummary])
	}
}

// TestServiceStatusAndEvents exercises the status and progress
// endpoints end to end.
func TestServiceStatusAndEvents(t *testing.T) {
	_, ts := startService(t, Config{Workers: 2})
	spec := `{"kind":"run","workload":"vpic","nodes":1,"steps":1,"mode":"sync","compute_seconds":1}`
	code, _, body := post(t, ts, "/v1/campaigns", spec)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("POST: status %d: %s", code, body)
	}
	var st struct {
		ID    string `json:"id"`
		Total int    `json:"total"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decoding status: %v (%s)", err, body)
	}
	if st.Total != 1 {
		t.Fatalf("run campaign total = %d, want 1", st.Total)
	}

	// The events stream closes once the single point lands.
	code, evBody := get(t, ts, "/v1/campaigns/"+st.ID+"/events")
	if code != http.StatusOK {
		t.Fatalf("events: status %d", code)
	}
	if !bytes.Contains(evBody, []byte(`"done":1`)) {
		t.Errorf("events stream missing completion record: %s", evBody)
	}

	code, stBody := get(t, ts, "/v1/campaigns/"+st.ID)
	if code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if !bytes.Contains(stBody, []byte(`"state":"complete"`)) {
		t.Errorf("campaign not complete after events closed: %s", stBody)
	}

	code, sum := get(t, ts, "/v1/campaigns/"+st.ID+"/result?format=summary")
	if code != http.StatusOK {
		t.Fatalf("result: %d: %s", code, sum)
	}
	if !bytes.Contains(sum, []byte("vpic on summit")) {
		t.Errorf("summary result: %q", sum)
	}
}

// TestServiceTypedErrors pins the HTTP error surface: malformed specs
// are typed 400s, unknown campaigns 404, overflow 429 with Retry-After,
// and draining 503.
func TestServiceTypedErrors(t *testing.T) {
	svc, ts := startService(t, Config{Workers: 1, QueueDepth: 2})

	for _, bad := range []string{
		`{`,
		`{"sweep":"fig99"}`,
		`{"kind":"run","mode":"turbo"}`,
		`{"sweep":"fig3a","nodes":4}`,
		`{"unknown_field":1}`,
		`{"kind":"run","faults":"nonsense"}`,
	} {
		code, _, body := post(t, ts, "/v1/campaigns", bad)
		if code != http.StatusBadRequest {
			t.Errorf("spec %s: status %d (%s), want 400", bad, code, body)
		}
	}

	if code, _ := get(t, ts, "/v1/campaigns/deadbeefdeadbeef"); code != http.StatusNotFound {
		t.Errorf("unknown campaign: status %d, want 404", code)
	}

	// Backpressure, deterministically: pause dispatch so nothing
	// drains, fill the queue past its depth with distinct cheap specs.
	svc.Pause()
	fill := func(i int) (int, http.Header) {
		spec := fmt.Sprintf(`{"kind":"run","workload":"vpic","nodes":1,"steps":1,"compute_seconds":%d}`, i+1)
		code, hdr, _ := post(t, ts, "/v1/campaigns", spec)
		return code, hdr
	}
	if code, _ := fill(0); code != http.StatusAccepted {
		t.Fatalf("fill 0: status %d", code)
	}
	if code, _ := fill(1); code != http.StatusAccepted {
		t.Fatalf("fill 1: status %d", code)
	}
	code, hdr := fill(2)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow POST: status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	rejected := counter(t, svc, "campaign.rejected")
	if rejected == 0 {
		t.Error("429 not accounted in campaign.rejected")
	}
	svc.Resume()

	// Drain: stops admission with 503. Readiness agrees; liveness does
	// not flinch — a draining daemon is still alive.
	if err := svc.Drain(t.Context()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code, _, _ := post(t, ts, "/v1/campaigns", fig3aSpec); code != http.StatusServiceUnavailable {
		t.Errorf("POST while draining: status %d, want 503", code)
	}
	if code, _ := get(t, ts, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: status %d, want 503", code)
	}
	if code, _ := get(t, ts, "/healthz"); code != http.StatusOK {
		t.Errorf("healthz while draining: status %d, want 200 (liveness)", code)
	}
}

// TestServiceFairDispatch pins the round-robin scheduler: with two
// tenants' work queued while dispatch is paused, the dispatch log
// alternates between them for as long as both have pending tasks.
func TestServiceFairDispatch(t *testing.T) {
	svc, ts := startService(t, Config{Workers: 1, QueueDepth: 64})
	svc.Pause()
	const perTenant = 3
	for i := 0; i < perTenant; i++ {
		for _, tenant := range []string{"alice", "bob"} {
			spec := fmt.Sprintf(`{"kind":"run","tenant":%q,"workload":"vpic","nodes":1,"steps":1,"compute_seconds":%d}`, tenant, 10*i+len(tenant))
			code, _, body := post(t, ts, "/v1/campaigns", spec)
			if code != http.StatusAccepted {
				t.Fatalf("POST %s/%d: status %d: %s", tenant, i, code, body)
			}
		}
	}
	svc.Resume()
	if err := svc.Drain(t.Context()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	log := svc.DispatchLog()
	if len(log) != 2*perTenant {
		t.Fatalf("dispatch log has %d entries, want %d", len(log), 2*perTenant)
	}
	// All work was queued before dispatch resumed and there is one
	// worker, so the round-robin order is fully deterministic: strict
	// alternation in first-seen tenant order.
	for i, d := range log {
		want := "alice"
		if i%2 == 1 {
			want = "bob"
		}
		if d.Tenant != want {
			t.Errorf("dispatch %d went to %s, want %s (log: %+v)", i, d.Tenant, want, log)
			break
		}
	}
}
