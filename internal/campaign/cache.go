package campaign

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU mapping point cache keys (Spec.PointKey) to
// their encoded results. Values are immutable once stored: the runner
// encodes each point deterministically, so a hit is byte-identical to
// recomputation by construction.
type Cache struct {
	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used
	m        map[string]*list.Element
	fallback func(string) ([]byte, bool)
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns an LRU holding at most max entries (a non-positive
// max falls back to 1024).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 1024
	}
	return &Cache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

// SetFallback installs a second-level lookup consulted on LRU miss —
// the durable point store's read path. A fallback hit is promoted into
// the LRU so repeat reads stay in memory. Call before serving.
func (c *Cache) SetFallback(fetch func(string) ([]byte, bool)) {
	c.mu.Lock()
	c.fallback = fetch
	c.mu.Unlock()
}

// Get returns the cached value for key and promotes it, consulting the
// fallback on a miss. Callers must not mutate the returned slice.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.m[key]
	if ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, true
	}
	fetch := c.fallback
	c.mu.Unlock()
	if fetch == nil {
		return nil, false
	}
	val, ok := fetch(key)
	if !ok {
		return nil, false
	}
	c.Put(key, val)
	return val, true
}

// Put stores val under key, evicting the least recently used entry when
// the cache is full.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
