package campaign

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU mapping point cache keys (Spec.PointKey) to
// their encoded results. Values are immutable once stored: the runner
// encodes each point deterministically, so a hit is byte-identical to
// recomputation by construction.
type Cache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns an LRU holding at most max entries (a non-positive
// max falls back to 1024).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 1024
	}
	return &Cache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the cached value for key and promotes it. Callers must
// not mutate the returned slice.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting the least recently used entry when
// the cache is full.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
