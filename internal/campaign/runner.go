package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/critpath"
	"asyncio/internal/experiments"
	"asyncio/internal/faults"
	"asyncio/internal/perfetto"
	"asyncio/internal/pfs"
	"asyncio/internal/recovery"
	"asyncio/internal/shard"
	"asyncio/internal/systems"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
	"asyncio/internal/workloads/bdcats"
	"asyncio/internal/workloads/castro"
	"asyncio/internal/workloads/eqsim"
	"asyncio/internal/workloads/harness"
	"asyncio/internal/workloads/nyx"
	"asyncio/internal/workloads/vpicio"
)

// ComputePoint simulates point i of the canonical spec c and returns
// its deterministic encoding — the bytes the cache stores. Every point
// is an independent run on its own virtual clock, so concurrent points
// from differently-configured campaigns never share state.
func ComputePoint(c *Spec, i int) ([]byte, error) {
	if c.Kind == "sweep" {
		return computeSweepPoint(c, i)
	}
	if i != 0 {
		return nil, fmt.Errorf("campaign: run spec has exactly one point, got index %d", i)
	}
	return computeRunPoint(c)
}

// runKnobs converts the spec's parsed knob block into the explicit
// per-run knobs the experiments package threads through a sweep.
func runKnobs(c *Spec) (*experiments.RunKnobs, error) {
	pk, err := c.knobBlock().Parse()
	if err != nil {
		return nil, err
	}
	return &experiments.RunKnobs{
		Faults:      pk.Faults,
		Consistency: pk.Consistency,
		Shards:      pk.Shards.Resolve(shard.MaxShards, runtime.GOMAXPROCS(0)),
		ShardPolicy: pk.Shards.Policy,
	}, nil
}

func computeSweepPoint(c *Spec, i int) ([]byte, error) {
	k, err := runKnobs(c)
	if err != nil {
		return nil, err
	}
	p, err := experiments.SimulateSweepPoint(c.Sweep, scaleOf(c.Scale), i, k)
	if err != nil {
		return nil, err
	}
	return encodeSweepPoint(p), nil
}

// encodeSweepPoint renders a point exactly: FormatFloat 'g' with -1
// precision round-trips float64 bit-for-bit, so decode(encode(p)) == p
// and cached points reassemble into byte-identical tables.
func encodeSweepPoint(p experiments.SweepPoint) []byte {
	return []byte(fmt.Sprintf("ranks=%d\npeak=%s\nest=%s\n",
		p.Ranks,
		strconv.FormatFloat(p.Peak, 'g', -1, 64),
		strconv.FormatFloat(p.Est, 'g', -1, 64)))
}

func decodeSweepPoint(b []byte) (experiments.SweepPoint, error) {
	var p experiments.SweepPoint
	for _, line := range strings.Split(strings.TrimRight(string(b), "\n"), "\n") {
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			return p, fmt.Errorf("campaign: malformed point line %q", line)
		}
		var err error
		switch k {
		case "ranks":
			p.Ranks, err = strconv.Atoi(v)
		case "peak":
			p.Peak, err = strconv.ParseFloat(v, 64)
		case "est":
			p.Est, err = strconv.ParseFloat(v, 64)
		default:
			err = fmt.Errorf("unknown key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("campaign: decoding point: %w", err)
		}
	}
	return p, nil
}

// ValidatePointPayload checks that b parses as some point result — a
// sweep point or a run bundle. The durable store's read path uses it as
// a belt-and-braces check on top of the frame checksum: a record whose
// frame verifies but whose payload no longer parses is treated as a
// miss and recomputed, never served.
func ValidatePointPayload(b []byte) error {
	if _, err := decodeSweepPoint(b); err == nil {
		return nil
	}
	if _, err := DecodeBundle(b); err == nil {
		return nil
	}
	return fmt.Errorf("campaign: payload is neither a sweep point nor a run bundle")
}

// AssembleSweepTable reassembles index-ordered point payloads into the
// rendered figure table — byte-identical to the CLI sweep path
// (experiments.SimulateSweep + AssembleSweep), pinned by the parity
// test in internal/experiments.
func AssembleSweepTable(c *Spec, payloads [][]byte) ([]byte, error) {
	halves := make([]experiments.SweepPoint, len(payloads))
	for i, b := range payloads {
		p, err := decodeSweepPoint(b)
		if err != nil {
			return nil, err
		}
		halves[i] = p
	}
	data, err := experiments.AssembleSweepPoints(c.Sweep, scaleOf(c.Scale), halves)
	if err != nil {
		return nil, err
	}
	tab, err := experiments.AssembleSweep(data)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// sweepPointsJSON renders the raw points as JSON (the machine-readable
// sweep format).
func sweepPointsJSON(c *Spec, payloads [][]byte) ([]byte, error) {
	type pt struct {
		Point int     `json:"point"`
		Ranks int     `json:"ranks"`
		Peak  float64 `json:"peak_bytes_per_sec"`
		Est   float64 `json:"est_bytes_per_sec"`
	}
	out := struct {
		Sweep  string `json:"sweep"`
		Scale  string `json:"scale"`
		Points []pt   `json:"points"`
	}{Sweep: c.Sweep, Scale: c.Scale}
	for i, b := range payloads {
		p, err := decodeSweepPoint(b)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, pt{Point: i, Ranks: p.Ranks, Peak: p.Peak, Est: p.Est})
	}
	b, err := json.Marshal(&out)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// sweepPointsCSV renders the raw points as CSV.
func sweepPointsCSV(payloads [][]byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString("point,ranks,peak_bytes_per_sec,est_bytes_per_sec\n")
	for i, b := range payloads {
		p, err := decodeSweepPoint(b)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&buf, "%d,%d,%s,%s\n", i, p.Ranks,
			strconv.FormatFloat(p.Peak, 'g', -1, 64),
			strconv.FormatFloat(p.Est, 'g', -1, 64))
	}
	return buf.Bytes(), nil
}

// Bundle artifact names for run-kind results.
const (
	ArtifactTrace    = "trace.csv"
	ArtifactMetrics  = "metrics.csv"
	ArtifactPerfetto = "perfetto.json"
	ArtifactCritPath = "critpath.json"
	ArtifactSummary  = "summary.txt"
)

// DecodeBundle unpacks a run-kind point payload into its artifacts.
func DecodeBundle(b []byte) (map[string][]byte, error) {
	var m map[string][]byte
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("campaign: decoding bundle: %w", err)
	}
	return m, nil
}

// computeRunPoint executes one instrumented run — the service-side
// twin of cmd/asyncio-trace — and packs every artifact the CLI can
// export into one deterministic JSON bundle (sorted keys, base64
// values). An injected crash still produces the bundle: the partial
// artifacts plus the crash/tear/journal-scan classification in the
// summary are the result of a crash campaign, not a service error.
func computeRunPoint(c *Spec) ([]byte, error) {
	pk, err := c.knobBlock().Parse()
	if err != nil {
		return nil, err
	}
	var mode core.Mode
	switch c.Mode {
	case "sync":
		mode = core.ForceSync
	case "async":
		mode = core.ForceAsync
	default:
		mode = core.Adaptive
	}

	var sysOpts []systems.Option
	if pk.Faults != nil {
		sysOpts = append(sysOpts, systems.WithFaults(faults.FromSpec(pk.Faults)))
	}
	sysOpts = append(sysOpts, systems.WithCritPath(critpath.NewRecorder()))
	var cons *pfs.Consistency
	if pk.Consistency != nil {
		sp := *pk.Consistency
		cons = pfs.NewConsistency(&sp)
		sysOpts = append(sysOpts, systems.WithConsistency(cons))
	}
	var clk *vclock.Clock
	if n := pk.Shards.Resolve(shard.MaxShards, runtime.GOMAXPROCS(0)); n > 1 {
		co := vclock.NewSharded(n)
		clk = co.Clock(0)
		sysOpts = append(sysOpts, systems.WithSharding(co, pk.Shards.Policy))
	} else {
		clk = vclock.New()
	}
	var sys *systems.System
	if c.System == "summit" {
		sys = systems.Summit(clk, c.Nodes, sysOpts...)
	} else {
		sys = systems.CoriHaswell(clk, c.Nodes, sysOpts...)
	}
	sys.Metrics.EnableSeries()

	var kit *harness.CrashKit
	var ck *harness.Checkpointer
	if c.Workload == "vpic" && (c.CheckpointEvery > 0 || c.Journal) {
		kit = harness.NewCrashKit(pk.Durability, recovery.DefaultCost(), c.Journal)
		ck = harness.NewCheckpointer(c.CheckpointEvery, kit.Journal)
		ck.Instrument(sys.Metrics)
		kit.Journal.Instrument(sys.Metrics, c.Workload)
		kit.SetCrit(sys.Crit)
	}

	var rep *core.Report
	switch c.Workload {
	case "vpic":
		cfg := vpicio.Config{Steps: c.Steps, ComputeTime: c.ComputeTime(), Mode: mode}
		if kit != nil {
			cfg.Store = kit.Durable
			cfg.Checkpoint = ck
			if c.Journal {
				cfg.Env.AsyncInlineStages = kit.InlineStages()
			}
		}
		rep, _, err = vpicio.Run(sys, cfg)
	case "bdcats":
		rep, err = bdcats.Run(sys, bdcats.Config{Steps: c.Steps, ComputeTime: c.ComputeTime(), Mode: mode}, nil)
	case "nyx":
		cfg := nyx.SmallConfig()
		cfg.Plotfiles = c.Steps
		cfg.Mode = mode
		rep, err = nyx.Run(sys, cfg)
	case "castro":
		rep, err = castro.Run(sys, castro.Config{Checkpoints: c.Steps, ComputeTime: c.ComputeTime(), Mode: mode})
	case "eqsim":
		rep, err = eqsim.Run(sys, eqsim.Config{Checkpoints: c.Steps, Mode: mode})
	}
	aborted := err != nil && rep != nil && rep.Aborted
	if err != nil && !aborted {
		return nil, err
	}

	bundle := make(map[string][]byte)
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, rep.Run.Records); err != nil {
		return nil, fmt.Errorf("campaign: trace CSV: %w", err)
	}
	bundle[ArtifactTrace] = append([]byte(nil), buf.Bytes()...)

	buf.Reset()
	label := fmt.Sprintf("%s-%s-%dn-%s", c.Workload, sys.Name, sys.Nodes(), c.Mode)
	if err := rep.Metrics.WriteCSV(&buf, label); err != nil {
		return nil, fmt.Errorf("campaign: metrics CSV: %w", err)
	}
	bundle[ArtifactMetrics] = append([]byte(nil), buf.Bytes()...)

	buf.Reset()
	if err := perfetto.WriteProfile(&buf, rep.Spans, rep.Metrics, rep.CritPath); err != nil {
		return nil, fmt.Errorf("campaign: perfetto: %w", err)
	}
	bundle[ArtifactPerfetto] = append([]byte(nil), buf.Bytes()...)

	if rep.CritPath != nil {
		buf.Reset()
		if err := rep.CritPath.WriteJSON(&buf); err != nil {
			return nil, fmt.Errorf("campaign: critpath: %w", err)
		}
		bundle[ArtifactCritPath] = append([]byte(nil), buf.Bytes()...)
	}

	var sum bytes.Buffer
	fmt.Fprintf(&sum, "%s on %s, %d nodes (%d ranks), %d epochs, mode=%s: total %v, peak %.2f GB/s\n",
		c.Workload, sys.Name, sys.Nodes(), rep.Run.Ranks, len(rep.Run.Records), c.Mode,
		rep.Run.TotalTime().Round(time.Millisecond), rep.Run.PeakRate()/1e9)
	if cons != nil {
		fmt.Fprintf(&sum, "consistency: %s, visibility wait %v\n",
			cons.Checker().Summary(), time.Duration(cons.VisibilityWaitNs()))
		if cerr := cons.Checker().Check(); cerr != nil && !aborted {
			return nil, fmt.Errorf("campaign: consistency check: %w", cerr)
		}
	}
	if aborted {
		for _, cr := range rep.Crashes {
			fmt.Fprintf(&sum, "crash at %v: ranks %v (%s)\n", cr.At, cr.Ranks, cr.Err)
		}
		if kit != nil {
			if pr := kit.Durable.Crash(clk.Now()); pr != nil {
				fmt.Fprintf(&sum, "write-back cache at crash: %d dirty bytes → %d flushed, %d torn, %d lost\n",
					pr.DirtyBytes, pr.Flushed, pr.Torn, pr.Lost)
			}
			scan := recovery.Scan(kit.Journal.Bytes(), kit.Base, recovery.ScanOptions{Replay: true})
			fmt.Fprintf(&sum, "journal scan: %s\n", scan.Summary())
			fmt.Fprintf(&sum, "last durable checkpoint: epoch %d (restart from %d)\n",
				ck.LastDurable(), ck.LastDurable()+1)
		}
		fmt.Fprintf(&sum, "run aborted: %v\n", err)
	}
	bundle[ArtifactSummary] = sum.Bytes()

	// json.Marshal of map[string][]byte sorts keys and base64-encodes
	// values: one canonical byte encoding of the whole artifact set.
	out, err := json.Marshal(bundle)
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
