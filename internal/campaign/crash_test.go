package campaign

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"asyncio/internal/campaign/store"
)

var refOnce struct {
	sync.Once
	spec     *Spec
	payloads [][]byte
	table    []byte
	err      error
}

// refSweep computes the fig3a reference once per process: the canonical
// spec, its per-point payloads, and the assembled table the service
// must serve byte-identically no matter what happened to its store.
func refSweep(t *testing.T) (*Spec, [][]byte, []byte) {
	t.Helper()
	refOnce.Do(func() {
		spec, err := DecodeSpec([]byte(fig3aSpec))
		if err != nil {
			refOnce.err = err
			return
		}
		total, err := spec.PointCount()
		if err != nil {
			refOnce.err = err
			return
		}
		payloads := make([][]byte, total)
		for i := 0; i < total; i++ {
			if payloads[i], err = ComputePoint(spec, i); err != nil {
				refOnce.err = err
				return
			}
		}
		table, err := AssembleSweepTable(spec, payloads)
		if err != nil {
			refOnce.err = err
			return
		}
		refOnce.spec, refOnce.payloads, refOnce.table = spec, payloads, table
	})
	if refOnce.err != nil {
		t.Fatal(refOnce.err)
	}
	return refOnce.spec, refOnce.payloads, refOnce.table
}

func storeOpts(dir string) store.Options {
	return store.Options{Dir: dir, FlushEvery: time.Hour, Logf: func(string, ...any) {}}
}

// seedStore writes the reference payloads into a fresh store at dir and
// closes it — the durable state a previous daemon left behind.
func seedStore(t *testing.T, dir string, spec *Spec, payloads [][]byte, opts store.Options) {
	t.Helper()
	st, rep, err := store.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("seed store not clean: %s", rep.Summary())
	}
	for i, p := range payloads {
		if err := st.Put(spec.PointKey(i), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreCrashRestartByteIdentical is the deterministic heart of the
// crash contract: a daemon computes a sweep, dies without warning
// (Abandon — no final flush), and its successor serves the identical
// bytes from the store without recomputing a single point.
func TestStoreCrashRestartByteIdentical(t *testing.T) {
	spec, _, want := refSweep(t)
	_ = spec
	dir := t.TempDir()

	st1, _, err := store.Open(storeOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	svc1, ts1 := startService(t, Config{Workers: 4, Store: st1})
	code, _, first := post(t, ts1, "/v1/campaigns?wait=table", fig3aSpec)
	if code != http.StatusOK {
		t.Fatalf("first daemon: status %d: %s", code, first)
	}
	if !bytes.Equal(first, want) {
		t.Fatal("first daemon's table drifted from the CLI reference")
	}
	// The worker writes through to the store write-behind; make the
	// writes durable, then crash without the graceful close.
	if err := st1.Flush(); err != nil {
		t.Fatal(err)
	}
	svc1.Close()
	ts1.Close()
	st1.Abandon()

	st2, rep, err := store.Open(storeOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	if !rep.Clean() || rep.Points == 0 {
		t.Fatalf("restart recovery: %s", rep.Summary())
	}
	// CacheSize 1 forces nearly every point through the store fallback.
	svc2, ts2 := startService(t, Config{Workers: 4, Store: st2, StoreRecovery: rep, CacheSize: 1})
	code, second := 0, []byte(nil)
	code, _, second = post(t, ts2, "/v1/campaigns?wait=table", fig3aSpec)
	if code != http.StatusOK {
		t.Fatalf("second daemon: status %d: %s", code, second)
	}
	if !bytes.Equal(second, want) {
		t.Fatal("recovered daemon served different bytes than the crashed one")
	}
	if hits := counter(t, svc2, "campaign.store.hits"); hits == 0 {
		t.Error("second daemon never hit the store — recovery was recomputation in disguise")
	}
	if misses := counter(t, svc2, "campaign.cache.misses"); misses != 0 {
		t.Errorf("second daemon recomputed %d points despite a full store", misses)
	}

	// /readyz reflects the recovered store.
	code, ready := get(t, ts2, "/readyz")
	if code != http.StatusOK || !bytes.Contains(ready, []byte(`"store"`)) ||
		!bytes.Contains(ready, []byte(`"recovery_clean":true`)) {
		t.Errorf("readyz after recovery: %d %s", code, ready)
	}
}

// TestStoreTornTailRecompute: a torn final record (the literal kill -9
// shape) is quarantined, and the daemon transparently recomputes the
// lost point — served bytes identical, typed accounting in the report.
func TestStoreTornTailRecompute(t *testing.T) {
	spec, payloads, want := refSweep(t)
	dir := t.TempDir()
	seedStore(t, dir, spec, payloads, storeOpts(dir))

	// Tear the tail of the last (only) segment.
	segs, err := filepath.Glob(filepath.Join(dir, "points-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	st, rep, err := store.Open(storeOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if len(rep.Quarantined) != 1 || !rep.Quarantined[0].Tail {
		t.Fatalf("torn tail verdict: %s", rep.Summary())
	}
	if rep.Points != len(payloads)-1 {
		t.Fatalf("recovered %d points, want %d", rep.Points, len(payloads)-1)
	}

	svc, ts := startService(t, Config{Workers: 2, Store: st, StoreRecovery: rep, CacheSize: 1})
	code, _, got := post(t, ts, "/v1/campaigns?wait=table", fig3aSpec)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("served table differs after torn-tail recovery + recompute")
	}
	if misses := counter(t, svc, "campaign.cache.misses"); misses != 1 {
		t.Errorf("recomputed %d points, want exactly the 1 quarantined one", misses)
	}
	// readyz reports the dirty recovery honestly.
	if _, ready := get(t, ts, "/readyz"); !bytes.Contains(ready, []byte(`"recovery_clean":false`)) {
		t.Errorf("readyz hides the quarantine: %s", ready)
	}
}

// TestServiceCrashChaos is the service-level kill-the-daemon harness:
// 100+ seeded trials, each staging a store a crashed daemon left behind
// — intact, torn, bit-flipped, or missing a whole segment — and
// asserting the restarted service serves the byte-identical table
// every single time, with any corrupt record quarantined at scan time
// (never discovered at read time).
func TestServiceCrashChaos(t *testing.T) {
	const trials = 100
	spec, payloads, want := refSweep(t)
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed%03d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(trial)))
			dir := t.TempDir()
			opts := storeOpts(dir)
			// Small segments force a multi-segment store, so damaging or
			// deleting one file loses a slice of the points, not all of
			// them — the recompute path is exercised cheaply every trial.
			opts.SegmentBytes = int64(60 + rng.Intn(200))
			opts.CompactMinDead = 1 << 40
			seedStore(t, dir, spec, payloads, opts)

			segs, err := filepath.Glob(filepath.Join(dir, "points-*.seg"))
			if err != nil || len(segs) == 0 {
				t.Fatalf("no segments: %v", err)
			}
			victim := segs[rng.Intn(len(segs))]
			switch rng.Intn(4) {
			case 0: // clean restart
			case 1: // torn write
				b, err := os.ReadFile(victim)
				if err != nil {
					t.Fatal(err)
				}
				if len(b) > 0 {
					if err := os.Truncate(victim, int64(rng.Intn(len(b)))); err != nil {
						t.Fatal(err)
					}
				}
			case 2: // bit rot
				b, err := os.ReadFile(victim)
				if err != nil {
					t.Fatal(err)
				}
				if len(b) > 0 {
					b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
					if err := os.WriteFile(victim, b, 0o644); err != nil {
						t.Fatal(err)
					}
				}
			case 3: // a whole segment vanished
				if err := os.Remove(victim); err != nil {
					t.Fatal(err)
				}
			}

			st, rep, err := store.Open(opts)
			if err != nil {
				t.Fatalf("seed %d: reopen: %v", trial, err)
			}
			t.Cleanup(func() { st.Close() })
			svc, ts := startService(t, Config{Workers: 2, Store: st, StoreRecovery: rep, CacheSize: 2})
			code, _, got := post(t, ts, "/v1/campaigns?wait=table", fig3aSpec)
			if code != http.StatusOK {
				t.Fatalf("seed %d: status %d: %s", trial, code, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d: served table differs from reference after recovery (%s)",
					trial, rep.Summary())
			}
			// Zero unquarantined corrupt records: anything damaged was
			// caught by the scan, so the read path never sees it.
			if re := counter(t, svc, "campaign.store.read.errors"); re != 0 {
				t.Fatalf("seed %d: %d read-time corruption errors — scan let damage through",
					trial, re)
			}
		})
	}
}
