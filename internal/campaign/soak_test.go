package campaign

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestServiceSoak hammers the service with 64 concurrent clients across
// mixed tenants (run with -race in CI) and then audits the books:
// every POST is accounted as admitted or rejected — a 429 is never
// dropped silently — per-tenant served counters add up, the scheduler
// never starves a tenant that had queued work, and after a drain both
// the queue-depth and in-flight gauges are back to zero.
func TestServiceSoak(t *testing.T) {
	const (
		clients    = 64
		perClient  = 4
		tenantMod  = 4
		queueDepth = 48 // small enough that bursts overflow into 429s
	)
	svc, ts := startService(t, Config{Workers: 4, QueueDepth: queueDepth})

	// A small pool of distinct cheap specs: duplicates collide in the
	// cache and in-flight table, distinct ones keep the workers busy.
	spec := func(tenant string, variant int) string {
		return fmt.Sprintf(`{"kind":"run","tenant":%q,"workload":"vpic","nodes":1,"steps":1,"mode":"sync","compute_seconds":%d}`,
			tenant, 1+variant%8)
	}

	var posts, accepted, throttled atomic.Int64
	var retryMu sync.Mutex
	retryByTenant := make(map[string][]int) // observed Retry-After values
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", i%tenantMod)
			for j := 0; j < perClient; j++ {
				resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json",
					strings.NewReader(spec(tenant, i+j)))
				if err != nil {
					t.Errorf("client %d POST %d: %v", i, j, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				posts.Add(1)
				switch resp.StatusCode {
				case http.StatusAccepted, http.StatusOK:
					accepted.Add(1)
				case http.StatusTooManyRequests:
					// Backpressure is a first-class answer; count it,
					// never swallow it.
					ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
					if err != nil {
						t.Errorf("client %d: 429 with unparseable Retry-After %q",
							i, resp.Header.Get("Retry-After"))
					} else {
						retryMu.Lock()
						retryByTenant[tenant] = append(retryByTenant[tenant], ra)
						retryMu.Unlock()
					}
					throttled.Add(1)
				default:
					t.Errorf("client %d POST %d: unexpected status %d", i, j, resp.StatusCode)
				}
			}
		}(i)
	}
	wg.Wait()

	// Retry-After carries deterministic per-tenant jitter so a burst of
	// rejected tenants does not return in one synchronized wave. Every
	// observed value must sit in the tenant's [base, base+maxLoad] band,
	// and tenants with different jitter must actually see different
	// values when the load component is equal.
	const workers = 4
	maxLoad := queueDepth / (workers * 4)
	for tenant, vals := range retryByTenant {
		base := retryAfterFor(tenant, 0, workers)
		for _, ra := range vals {
			if ra < base || ra > base+maxLoad {
				t.Errorf("tenant %s: Retry-After %d outside jittered band [%d, %d]",
					tenant, ra, base, base+maxLoad)
			}
		}
	}
	if len(retryByTenant) >= 2 {
		bases := make(map[int]bool)
		observed := make(map[int]bool)
		for tenant, vals := range retryByTenant {
			bases[retryAfterFor(tenant, 0, workers)] = true
			for _, ra := range vals {
				observed[ra] = true
			}
		}
		if len(bases) >= 2 && len(observed) < 2 {
			t.Errorf("tenants with distinct jitter bases all saw the same Retry-After %v", observed)
		}
	}

	if err := svc.Drain(t.Context()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	reg := svc.Metrics()
	admitted := counter(t, svc, "campaign.admitted")
	rejected := counter(t, svc, "campaign.rejected")
	if admitted != accepted.Load() {
		t.Errorf("campaign.admitted = %d, clients saw %d acceptances", admitted, accepted.Load())
	}
	if rejected != throttled.Load() {
		t.Errorf("campaign.rejected = %d, clients saw %d throttles", rejected, throttled.Load())
	}
	if admitted+rejected != posts.Load() {
		t.Errorf("admitted %d + rejected %d != POSTs %d", admitted, rejected, posts.Load())
	}

	// Every admitted POST here is a single-point run campaign, and the
	// tenant is credited at admission — so the per-tenant counters must
	// sum to the admitted count.
	var tenantSum int64
	for i := 0; i < tenantMod; i++ {
		tenantSum += counter(t, svc, fmt.Sprintf("campaign.tenant.served.t%d", i))
	}
	if tenantSum != admitted {
		t.Errorf("per-tenant served sum %d != admitted %d", tenantSum, admitted)
	}

	// Drained means idle: both gauges back to zero.
	if g := reg.FindGauge("campaign.queue.depth"); g == nil || g.Value() != 0 {
		t.Errorf("queue depth gauge not zero after drain: %v", g)
	}
	if g := reg.FindGauge("campaign.workers.inflight"); g == nil || g.Value() != 0 {
		t.Errorf("in-flight gauge not zero after drain: %v", g)
	}

	// Fair-share bound: round-robin means a tenant never gets two
	// consecutive dispatches while another tenant had queued work
	// (Queued counts everyone's remaining tasks, Pending only the
	// dispatched tenant's — a gap between them is other tenants' work).
	log := svc.DispatchLog()
	if len(log) == 0 {
		t.Fatal("empty dispatch log after soak")
	}
	for i := 1; i < len(log); i++ {
		prev := log[i-1]
		if log[i].Tenant == prev.Tenant && prev.Queued > prev.Pending {
			t.Errorf("dispatch %d: tenant %s served twice in a row while others had %d queued tasks",
				i, prev.Tenant, prev.Queued-prev.Pending)
		}
	}
}
