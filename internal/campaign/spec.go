// Package campaign implements the asyncio-serve sweep server: a
// long-running daemon that accepts scenario specs over HTTP, schedules
// their simulation points across a worker pool, and memoizes results in
// a content-addressed cache.
//
// Determinism is the service contract. A spec is canonicalized (field
// order, whitespace, and default-value differences all normalize away)
// and content-hashed, and every simulation point is an independent run
// on its own virtual clock — so a result served from cache, computed by
// a cold worker, or computed under a different worker count is
// byte-identical. The knob fields (faults, consistency, durability,
// shards) share the CLI flag grammar through internal/cliflags, so the
// HTTP surface cannot drift from the flag surface.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strconv"
	"time"

	"asyncio/internal/cliflags"
	"asyncio/internal/experiments"
)

// MaxSpecBytes bounds a POSTed spec body; anything larger is rejected
// before decoding.
const MaxSpecBytes = 1 << 16

// Spec is one scenario: either a paper-figure sweep (kind "sweep") or a
// single instrumented run (kind "run"), plus the shared knob block. The
// JSON field names are the wire format cmd/asyncio-serve accepts.
type Spec struct {
	// Kind selects the scenario shape: "sweep" or "run". Empty infers
	// "sweep" when a sweep id is given, "run" otherwise.
	Kind string `json:"kind,omitempty"`
	// Tenant attributes the request for fair scheduling ("default"
	// when empty). It is part of campaign identity but never of the
	// point cache key, so tenants share cached simulation work.
	Tenant string `json:"tenant,omitempty"`

	// Sweep kind: a figure id from experiments.SweepIDs (e.g. "fig3a")
	// at a named scale ("reduced" or "full", default "reduced").
	Sweep string `json:"sweep,omitempty"`
	Scale string `json:"scale,omitempty"`

	// Run kind: one workload on one system, mirroring asyncio-trace.
	Workload       string  `json:"workload,omitempty"`        // vpic | bdcats | nyx | castro | eqsim
	System         string  `json:"system,omitempty"`          // summit | cori
	Nodes          int     `json:"nodes,omitempty"`           // allocation size
	Mode           string  `json:"mode,omitempty"`            // sync | async | adaptive
	Steps          int     `json:"steps,omitempty"`           // epochs
	ComputeSeconds float64 `json:"compute_seconds,omitempty"` // compute phase per epoch

	// Crash durability (run kind, vpic only).
	Durability      string `json:"durability,omitempty"`       // gpfs | lustre
	DurabilitySeed  int64  `json:"durability_seed,omitempty"`  // tearing draws
	CheckpointEvery int    `json:"checkpoint_every,omitempty"` // epochs, 0 = off
	Journal         bool   `json:"journal,omitempty"`

	// Shared knob block (grammar: internal/cliflags).
	Faults      string `json:"faults,omitempty"`
	Consistency string `json:"consistency,omitempty"`
	// Shards is an execution hint, not identity: sharding never changes
	// simulated output, so it is excluded from the content hash.
	Shards string `json:"shards,omitempty"`
}

// SpecError is the typed 400 a malformed spec produces. Field names the
// offending spec field when one is identifiable.
type SpecError struct {
	Field string
	Msg   string
}

func (e *SpecError) Error() string {
	if e.Field == "" {
		return "spec: " + e.Msg
	}
	return "spec: " + e.Field + ": " + e.Msg
}

func specErrf(field, format string, args ...any) *SpecError {
	return &SpecError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// DecodeSpec parses and canonicalizes one JSON spec. Unknown fields,
// trailing data, and every validation failure come back as *SpecError —
// the server maps them to 400, and the fuzzer asserts no input panics.
func DecodeSpec(data []byte) (*Spec, error) {
	if len(data) > MaxSpecBytes {
		return nil, specErrf("", "body exceeds %d bytes", MaxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, &SpecError{Msg: err.Error()}
	}
	if dec.More() {
		return nil, &SpecError{Msg: "trailing data after spec"}
	}
	return s.Canonicalize()
}

// validName reports whether s is a safe identifier (tenant names appear
// in metric names and URLs).
func validName(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

var sweepIDSet = func() map[string]bool {
	m := make(map[string]bool)
	for _, id := range experiments.SweepIDs() {
		m[id] = true
	}
	return m
}()

// scaleOf maps a canonical scale name to its experiments.Scale.
func scaleOf(name string) experiments.Scale {
	if name == "full" {
		return experiments.FullScale()
	}
	return experiments.ReducedScale()
}

// Canonicalize validates the spec and returns its normal form: defaults
// filled in, knob strings re-rendered through their parsers' String
// round-trips, and fields the kind ignores cleared — so any two specs
// describing the same experiment canonicalize to identical values and
// hash identically.
func (s *Spec) Canonicalize() (*Spec, error) {
	c := *s
	if c.Tenant == "" {
		c.Tenant = "default"
	}
	if !validName(c.Tenant) {
		return nil, specErrf("tenant", "must be 1-64 chars of [A-Za-z0-9._-], got %q", c.Tenant)
	}
	if c.Kind == "" {
		if c.Sweep != "" {
			c.Kind = "sweep"
		} else {
			c.Kind = "run"
		}
	}
	switch c.Kind {
	case "sweep":
		if err := c.canonSweep(); err != nil {
			return nil, err
		}
	case "run":
		if err := c.canonRun(); err != nil {
			return nil, err
		}
	default:
		return nil, specErrf("kind", "unknown kind %q (want sweep or run)", c.Kind)
	}
	pk, err := c.knobBlock().Parse()
	if err != nil {
		return nil, &SpecError{Msg: err.Error()}
	}
	// Re-render through the parsers' String round-trips so equivalent
	// spellings ("2" vs " 2:block ") normalize to one canonical form.
	if pk.Faults != nil {
		c.Faults = pk.Faults.String()
	}
	if pk.Consistency != nil {
		c.Consistency = pk.Consistency.String()
	}
	c.Shards = pk.Shards.String()
	if c.Kind == "run" {
		if c.Durability == "" {
			c.Durability = "gpfs"
		}
		if c.DurabilitySeed == 0 {
			c.DurabilitySeed = 1
		}
	}
	return &c, nil
}

func (c *Spec) canonSweep() error {
	if !sweepIDSet[c.Sweep] {
		return specErrf("sweep", "unknown sweep figure %q (want one of %v)", c.Sweep, experiments.SweepIDs())
	}
	if c.Scale == "" {
		c.Scale = "reduced"
	}
	if c.Scale != "reduced" && c.Scale != "full" {
		return specErrf("scale", "unknown scale %q (want reduced or full)", c.Scale)
	}
	// Run-only fields are rejected rather than silently ignored.
	switch {
	case c.Workload != "":
		return specErrf("workload", "only meaningful for run specs")
	case c.System != "":
		return specErrf("system", "only meaningful for run specs")
	case c.Nodes != 0:
		return specErrf("nodes", "only meaningful for run specs")
	case c.Mode != "":
		return specErrf("mode", "only meaningful for run specs")
	case c.Steps != 0:
		return specErrf("steps", "only meaningful for run specs")
	case c.ComputeSeconds != 0:
		return specErrf("compute_seconds", "only meaningful for run specs")
	case c.CheckpointEvery != 0:
		return specErrf("checkpoint_every", "only meaningful for run specs")
	case c.Journal:
		return specErrf("journal", "only meaningful for run specs")
	}
	// Sweeps never tear write-back caches: durability is normalized
	// away so it cannot split the cache key.
	c.Durability, c.DurabilitySeed = "", 0
	return nil
}

func (c *Spec) canonRun() error {
	if c.Sweep != "" {
		return specErrf("sweep", "only meaningful for sweep specs")
	}
	if c.Scale != "" {
		return specErrf("scale", "only meaningful for sweep specs")
	}
	if c.Workload == "" {
		c.Workload = "vpic"
	}
	switch c.Workload {
	case "vpic", "bdcats", "nyx", "castro", "eqsim":
	default:
		return specErrf("workload", "unknown workload %q", c.Workload)
	}
	if c.System == "" {
		c.System = "summit"
	}
	if c.System != "summit" && c.System != "cori" {
		return specErrf("system", "unknown system %q (want summit or cori)", c.System)
	}
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.Nodes < 1 || c.Nodes > 2048 {
		return specErrf("nodes", "%d outside 1..2048", c.Nodes)
	}
	if c.Mode == "" {
		c.Mode = "adaptive"
	}
	if c.Mode != "sync" && c.Mode != "async" && c.Mode != "adaptive" {
		return specErrf("mode", "unknown mode %q (want sync, async, or adaptive)", c.Mode)
	}
	if c.Steps == 0 {
		c.Steps = 4
	}
	if c.Steps < 1 || c.Steps > 64 {
		return specErrf("steps", "%d outside 1..64", c.Steps)
	}
	switch c.Workload {
	case "nyx", "eqsim":
		// These workloads carry their own compute model; the knob is
		// ignored, so it is normalized away rather than splitting hashes.
		c.ComputeSeconds = 0
	default:
		if c.ComputeSeconds == 0 {
			c.ComputeSeconds = 30
		}
		if c.ComputeSeconds < 0 || c.ComputeSeconds > 3600 {
			return specErrf("compute_seconds", "%v outside (0, 3600]", c.ComputeSeconds)
		}
	}
	if c.CheckpointEvery < 0 || c.CheckpointEvery > 64 {
		return specErrf("checkpoint_every", "%d outside 0..64", c.CheckpointEvery)
	}
	if (c.CheckpointEvery > 0 || c.Journal) && c.Workload != "vpic" {
		return specErrf("checkpoint_every", "crash-durability plumbing is only wired into the vpic workload")
	}
	return nil
}

// knobBlock lifts the spec's knob fields into the shared cliflags
// grammar for validation and canonicalization.
func (c *Spec) knobBlock() cliflags.Knobs {
	return cliflags.Knobs{
		Faults:         c.Faults,
		Consistency:    c.Consistency,
		Durability:     c.Durability,
		DurabilitySeed: c.DurabilitySeed,
		Shards:         c.Shards,
	}
}

// ComputeTime returns the canonical compute phase as a duration.
func (c *Spec) ComputeTime() time.Duration {
	return time.Duration(c.ComputeSeconds * float64(time.Second))
}

// contentLines is the canonical encoding of the experiment content —
// what the simulation computes, independent of who asked (tenant) and
// how fast it executes (shards). Point cache keys derive from it, so
// tenants share cached work and shard settings never split the cache.
func (c *Spec) contentLines() []string {
	ls := []string{"kind=" + c.Kind}
	switch c.Kind {
	case "sweep":
		ls = append(ls, "sweep="+c.Sweep, "scale="+c.Scale)
	case "run":
		ls = append(ls,
			"workload="+c.Workload,
			"system="+c.System,
			"nodes="+strconv.Itoa(c.Nodes),
			"mode="+c.Mode,
			"steps="+strconv.Itoa(c.Steps),
			"compute="+strconv.FormatFloat(c.ComputeSeconds, 'g', -1, 64),
			"durability="+c.Durability,
			"durability_seed="+strconv.FormatInt(c.DurabilitySeed, 10),
			"checkpoint_every="+strconv.Itoa(c.CheckpointEvery),
			"journal="+strconv.FormatBool(c.Journal),
		)
	}
	return append(ls, "faults="+c.Faults, "consistency="+c.Consistency)
}

func hashLines(lines []string) string {
	h := fnv.New64a()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// ContentHash is the FNV-1a 64 hash of the canonical experiment
// content. Two specs with equal ContentHash produce byte-identical
// results.
func (c *Spec) ContentHash() string { return hashLines(c.contentLines()) }

// ID is the campaign identity: the content hash salted with the tenant,
// so each tenant's submission is its own campaign (with its own
// attribution and fairness accounting) while the underlying points
// still share one cache via ContentHash.
func (c *Spec) ID() string {
	return hashLines(append(c.contentLines(), "tenant="+c.Tenant))
}

// PointCount returns how many independent simulation points the spec
// schedules: 2 per node count for a sweep, 1 for a run.
func (c *Spec) PointCount() (int, error) {
	if c.Kind == "sweep" {
		return experiments.SweepPointCount(c.Sweep, scaleOf(c.Scale))
	}
	return 1, nil
}

// PointKey returns the cache key of point i: the content hash plus the
// point index.
func (c *Spec) PointKey(i int) string {
	return c.ContentHash() + "/" + strconv.Itoa(i)
}
