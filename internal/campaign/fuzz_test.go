package campaign

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzScenarioSpec fuzzes the spec decoder end to end: no input may
// panic, every rejection must be the typed *SpecError the server maps
// to a 400, and for every accepted spec the canonical form must be a
// fixed point — re-encoding it (compactly or with whitespace) and
// decoding again yields the same canonical spec, content hash, and
// campaign ID. Field order and whitespace can never split the cache.
func FuzzScenarioSpec(f *testing.F) {
	f.Add([]byte(`{"sweep":"fig3a"}`))
	f.Add([]byte(`{"kind":"sweep","sweep":"fig3b","scale":"full","tenant":"alice"}`))
	f.Add([]byte("\n\t{ \"scale\": \"reduced\",\n\t  \"sweep\": \"fig3a\",\n\t  \"kind\": \"sweep\" }\n"))
	f.Add([]byte(`{"kind":"run","workload":"vpic","nodes":2,"steps":4,"mode":"adaptive","compute_seconds":30}`))
	f.Add([]byte(`{"kind":"run","workload":"vpic","nodes":1,"steps":6,"mode":"async","faults":"crashrank=3@95s","checkpoint_every":2,"journal":true,"durability":"lustre"}`))
	f.Add([]byte(`{"kind":"run","workload":"bdcats","system":"cori","consistency":"session","shards":"2:stripe"}`))
	f.Add([]byte(`{"sweep":"fig99"}`))
	f.Add([]byte(`{"unknown_field":true}`))
	f.Add([]byte(`{"kind":"run","mode":"turbo"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"kind":"run","nodes":-5}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(data)
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("rejection is not a typed *SpecError: %T %v", err, err)
			}
			if se.Error() == "" {
				t.Fatal("empty SpecError message")
			}
			return
		}
		id, content := spec.ID(), spec.ContentHash()
		if len(id) != 16 || len(content) != 16 {
			t.Fatalf("hash lengths: id %q content %q", id, content)
		}
		if n, err := spec.PointCount(); err != nil || n < 1 {
			t.Fatalf("canonical spec has no points: n=%d err=%v", n, err)
		}

		// Canonicalization is a fixed point.
		again, err := spec.Canonicalize()
		if err != nil {
			t.Fatalf("re-canonicalizing a canonical spec failed: %v", err)
		}
		if *again != *spec {
			t.Fatalf("canonicalize not idempotent:\n%+v\n%+v", spec, again)
		}

		// Compact and indented re-encodings decode to the same identity.
		for _, encode := range []func(any) ([]byte, error){
			json.Marshal,
			func(v any) ([]byte, error) { return json.MarshalIndent(v, " \t", "  ") },
		} {
			b, err := encode(spec)
			if err != nil {
				t.Fatalf("encoding canonical spec: %v", err)
			}
			dec, err := DecodeSpec(b)
			if err != nil {
				t.Fatalf("round-tripping canonical spec %s: %v", b, err)
			}
			if dec.ID() != id || dec.ContentHash() != content {
				t.Fatalf("identity unstable across re-encoding:\n%s\nid %q -> %q, content %q -> %q",
					b, id, dec.ID(), content, dec.ContentHash())
			}
		}
	})
}
