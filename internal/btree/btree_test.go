package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intTree(order int) *Tree[int, string] {
	return New[int, string](order, func(a, b int) bool { return a < b })
}

func TestEmptyTree(t *testing.T) {
	tr := intTree(4)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree found a value")
	}
	if _, ok := tr.Delete(1); ok {
		t.Fatal("Delete on empty tree reported success")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree")
	}
	count := 0
	tr.Ascend(func(int, string) bool { count++; return true })
	if count != 0 {
		t.Fatal("Ascend on empty tree visited entries")
	}
}

func TestPutGetReplace(t *testing.T) {
	tr := intTree(4)
	if _, replaced := tr.Put(1, "a"); replaced {
		t.Fatal("fresh Put reported replacement")
	}
	old, replaced := tr.Put(1, "b")
	if !replaced || old != "a" {
		t.Fatalf("replace = %v %q", replaced, old)
	}
	if v, ok := tr.Get(1); !ok || v != "b" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestOrderedIterationAfterRandomInserts(t *testing.T) {
	tr := intTree(5)
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(1000)
	for _, k := range perm {
		tr.Put(k, "")
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	prev := -1
	tr.Ascend(func(k int, _ string) bool {
		if k <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		prev = k
		return true
	})
	if prev != 999 {
		t.Fatalf("last key = %d, want 999", prev)
	}
}

func TestMinMax(t *testing.T) {
	tr := intTree(3)
	for _, k := range []int{50, 10, 90, 30, 70} {
		tr.Put(k, "")
	}
	if k, _, _ := tr.Min(); k != 10 {
		t.Fatalf("Min = %d", k)
	}
	if k, _, _ := tr.Max(); k != 90 {
		t.Fatalf("Max = %d", k)
	}
}

func TestAscendRange(t *testing.T) {
	tr := intTree(4)
	for i := 0; i < 100; i += 2 {
		tr.Put(i, "")
	}
	var got []int
	tr.AscendRange(10, 20, func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	want := []int{10, 12, 14, 16, 18}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Range with lo not present.
	got = got[:0]
	tr.AscendRange(11, 15, func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 2 || got[0] != 12 || got[1] != 14 {
		t.Fatalf("got %v, want [12 14]", got)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := intTree(4)
	for i := 0; i < 50; i++ {
		tr.Put(i, "")
	}
	count := 0
	tr.Ascend(func(int, string) bool { count++; return count < 7 })
	if count != 7 {
		t.Fatalf("visited %d, want 7", count)
	}
}

func TestDeleteAllRandomOrder(t *testing.T) {
	tr := intTree(4)
	rng := rand.New(rand.NewSource(7))
	const n = 500
	for _, k := range rng.Perm(n) {
		tr.Put(k, "v")
	}
	for _, k := range rng.Perm(n) {
		v, ok := tr.Delete(k)
		if !ok || v != "v" {
			t.Fatalf("Delete(%d) = %q %v", k, v, ok)
		}
		if _, ok := tr.Get(k); ok {
			t.Fatalf("key %d still present after delete", k)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := intTree(3)
	tr.Put(1, "a")
	if _, ok := tr.Delete(2); ok {
		t.Fatal("Delete(2) succeeded")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestSmallOrderStress(t *testing.T) {
	// Order 3 maximizes splits/merges.
	tr := intTree(3)
	ref := map[int]string{}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		k := rng.Intn(300)
		switch rng.Intn(3) {
		case 0, 1:
			v := string(rune('a' + k%26))
			tr.Put(k, v)
			ref[k] = v
		case 2:
			_, treeOK := tr.Delete(k)
			_, refOK := ref[k]
			if treeOK != refOK {
				t.Fatalf("step %d: Delete(%d) = %v, ref %v", i, k, treeOK, refOK)
			}
			delete(ref, k)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, ref %d", i, tr.Len(), len(ref))
		}
	}
	// Full content check.
	keys := make([]int, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	i := 0
	tr.Ascend(func(k int, v string) bool {
		if i >= len(keys) || k != keys[i] || v != ref[k] {
			t.Fatalf("iteration mismatch at %d: got (%d,%q)", i, k, v)
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("iterated %d entries, want %d", i, len(keys))
	}
}

func TestPanicOnTinyOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(2) did not panic")
		}
	}()
	New[int, int](2, func(a, b int) bool { return a < b })
}

func TestStringKeys(t *testing.T) {
	tr := New[string, int](4, func(a, b string) bool { return a < b })
	words := []string{"dataset", "group", "attr", "chunk", "superblock", "link"}
	for i, w := range words {
		tr.Put(w, i)
	}
	var got []string
	tr.Ascend(func(k string, _ int) bool { got = append(got, k); return true })
	if !sort.StringsAreSorted(got) {
		t.Fatalf("not sorted: %v", got)
	}
}

// TestQuickModelEquivalence is a property test: after an arbitrary
// sequence of puts and deletes, the tree matches a reference map and
// iterates in sorted order.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(ops []int16, seed int64) bool {
		tr := New[int16, int16](3+int(seed%6+5)%6+3, func(a, b int16) bool { return a < b })
		ref := map[int16]int16{}
		for i, k := range ops {
			if i%3 == 2 {
				_, treeOK := tr.Delete(k)
				_, refOK := ref[k]
				if treeOK != refOK {
					return false
				}
				delete(ref, k)
			} else {
				tr.Put(k, int16(i))
				ref[k] = int16(i)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		prevSet := false
		var prev int16
		ok := true
		n := 0
		tr.Ascend(func(k, v int16) bool {
			if prevSet && k <= prev {
				ok = false
				return false
			}
			prev, prevSet = k, true
			if rv, exists := ref[k]; !exists || rv != v {
				ok = false
				return false
			}
			n++
			return true
		})
		return ok && n == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	tr := intTree(64)
	for i := 0; i < b.N; i++ {
		tr.Put(i*2654435761%1000000, "")
	}
}

func BenchmarkGet(b *testing.B) {
	tr := intTree(64)
	for i := 0; i < 100000; i++ {
		tr.Put(i, "")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(i % 100000)
	}
}
