// Package btree implements an in-memory B+tree with ordered iteration.
//
// The hdf5 substrate uses it for chunk indexes (chunk coordinate →
// file address) and group link tables (name → object address), mirroring
// the version-1/2 B-trees real HDF5 keeps for the same purposes. Leaves
// are linked for cheap range scans, which the hyperslab reader relies on
// when walking the chunks intersecting a selection.
package btree

import "fmt"

// Tree is a B+tree mapping K to V under a caller-supplied ordering.
// Construct with New. Not safe for concurrent mutation.
type Tree[K, V any] struct {
	less  func(a, b K) bool
	order int // max entries per leaf and max keys per inner node
	root  node[K, V]
	first *leaf[K, V]
	size  int
}

// New returns an empty tree. Order is the maximum number of entries per
// node; it must be at least 3 (real deployments use tens to hundreds).
func New[K, V any](order int, less func(a, b K) bool) *Tree[K, V] {
	if order < 3 {
		panic(fmt.Sprintf("btree: order %d < 3", order))
	}
	lf := &leaf[K, V]{}
	return &Tree[K, V]{less: less, order: order, root: lf, first: lf}
}

// Len returns the number of entries.
func (t *Tree[K, V]) Len() int { return t.size }

type node[K, V any] interface {
	// findLeaf descends to the leaf that does or would hold key.
	findLeaf(t *Tree[K, V], key K) *leaf[K, V]
}

type leaf[K, V any] struct {
	keys []K
	vals []V
	next *leaf[K, V]
}

type inner[K, V any] struct {
	keys []K          // n separator keys
	kids []node[K, V] // n+1 children; kids[i] holds keys < keys[i]
}

func (l *leaf[K, V]) findLeaf(*Tree[K, V], K) *leaf[K, V] { return l }

func (in *inner[K, V]) findLeaf(t *Tree[K, V], key K) *leaf[K, V] {
	return in.kids[t.childIndex(in, key)].findLeaf(t, key)
}

// childIndex returns the child slot for key: the first i with
// key < keys[i], else len(keys).
func (t *Tree[K, V]) childIndex(in *inner[K, V], key K) int {
	lo, hi := 0, len(in.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.less(key, in.keys[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// leafIndex returns the position of key in l (found=true) or its
// insertion point.
func (t *Tree[K, V]) leafIndex(l *leaf[K, V], key K) (int, bool) {
	lo, hi := 0, len(l.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.less(l.keys[mid], key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	found := lo < len(l.keys) && !t.less(key, l.keys[lo])
	return lo, found
}

// Get returns the value stored under key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	l := t.root.findLeaf(t, key)
	if i, ok := t.leafIndex(l, key); ok {
		return l.vals[i], true
	}
	var zero V
	return zero, false
}

// Put stores value under key, returning the previous value if the key
// was already present.
func (t *Tree[K, V]) Put(key K, value V) (old V, replaced bool) {
	split, sepKey, right, prev, had := t.insert(t.root, key, value)
	if split {
		t.root = &inner[K, V]{keys: []K{sepKey}, kids: []node[K, V]{t.root, right}}
	}
	if !had {
		t.size++
	}
	return prev, had
}

// insert adds key/value under n. If n overflows it splits, returning the
// separator key and new right sibling.
func (t *Tree[K, V]) insert(n node[K, V], key K, value V) (split bool, sepKey K, right node[K, V], old V, had bool) {
	switch n := n.(type) {
	case *leaf[K, V]:
		i, found := t.leafIndex(n, key)
		if found {
			old, had = n.vals[i], true
			n.vals[i] = value
			return
		}
		n.keys = insertAt(n.keys, i, key)
		n.vals = insertAt(n.vals, i, value)
		if len(n.keys) > t.order {
			mid := len(n.keys) / 2
			r := &leaf[K, V]{
				keys: append([]K(nil), n.keys[mid:]...),
				vals: append([]V(nil), n.vals[mid:]...),
				next: n.next,
			}
			n.keys = n.keys[:mid:mid]
			n.vals = n.vals[:mid:mid]
			n.next = r
			return true, r.keys[0], r, old, had
		}
		return
	case *inner[K, V]:
		ci := t.childIndex(n, key)
		childSplit, childSep, childRight, o, h := t.insert(n.kids[ci], key, value)
		old, had = o, h
		if childSplit {
			n.keys = insertAt(n.keys, ci, childSep)
			n.kids = insertAt(n.kids, ci+1, childRight)
			if len(n.keys) > t.order {
				mid := len(n.keys) / 2
				sep := n.keys[mid]
				r := &inner[K, V]{
					keys: append([]K(nil), n.keys[mid+1:]...),
					kids: append([]node[K, V](nil), n.kids[mid+1:]...),
				}
				n.keys = n.keys[:mid:mid]
				n.kids = n.kids[: mid+1 : mid+1]
				return true, sep, r, old, had
			}
		}
		return
	}
	panic("btree: unknown node type")
}

// Delete removes key, returning its value if present.
func (t *Tree[K, V]) Delete(key K) (V, bool) {
	v, ok := t.delete(t.root, key)
	if ok {
		t.size--
	}
	if in, isInner := t.root.(*inner[K, V]); isInner && len(in.keys) == 0 {
		t.root = in.kids[0]
	}
	return v, ok
}

func (t *Tree[K, V]) minEntries() int { return t.order / 2 }

func (t *Tree[K, V]) delete(n node[K, V], key K) (V, bool) {
	switch n := n.(type) {
	case *leaf[K, V]:
		i, found := t.leafIndex(n, key)
		if !found {
			var zero V
			return zero, false
		}
		v := n.vals[i]
		n.keys = removeAt(n.keys, i)
		n.vals = removeAt(n.vals, i)
		return v, true
	case *inner[K, V]:
		ci := t.childIndex(n, key)
		v, ok := t.delete(n.kids[ci], key)
		if ok {
			t.rebalance(n, ci)
		}
		return v, ok
	}
	panic("btree: unknown node type")
}

// rebalance restores the occupancy invariant for n.kids[ci] after a
// deletion, borrowing from or merging with a sibling.
func (t *Tree[K, V]) rebalance(n *inner[K, V], ci int) {
	minE := t.minEntries()
	switch child := n.kids[ci].(type) {
	case *leaf[K, V]:
		if len(child.keys) >= minE {
			return
		}
		if ci > 0 {
			left := n.kids[ci-1].(*leaf[K, V])
			if len(left.keys) > minE { // borrow from left
				last := len(left.keys) - 1
				child.keys = insertAt(child.keys, 0, left.keys[last])
				child.vals = insertAt(child.vals, 0, left.vals[last])
				left.keys = left.keys[:last]
				left.vals = left.vals[:last]
				n.keys[ci-1] = child.keys[0]
				return
			}
		}
		if ci < len(n.kids)-1 {
			rightSib := n.kids[ci+1].(*leaf[K, V])
			if len(rightSib.keys) > minE { // borrow from right
				child.keys = append(child.keys, rightSib.keys[0])
				child.vals = append(child.vals, rightSib.vals[0])
				rightSib.keys = removeAt(rightSib.keys, 0)
				rightSib.vals = removeAt(rightSib.vals, 0)
				n.keys[ci] = rightSib.keys[0]
				return
			}
		}
		// Merge with a sibling.
		if ci > 0 {
			left := n.kids[ci-1].(*leaf[K, V])
			left.keys = append(left.keys, child.keys...)
			left.vals = append(left.vals, child.vals...)
			left.next = child.next
			n.keys = removeAt(n.keys, ci-1)
			n.kids = removeAt(n.kids, ci)
		} else {
			rightSib := n.kids[ci+1].(*leaf[K, V])
			child.keys = append(child.keys, rightSib.keys...)
			child.vals = append(child.vals, rightSib.vals...)
			child.next = rightSib.next
			n.keys = removeAt(n.keys, ci)
			n.kids = removeAt(n.kids, ci+1)
		}
	case *inner[K, V]:
		if len(child.keys) >= minE {
			return
		}
		if ci > 0 {
			left := n.kids[ci-1].(*inner[K, V])
			if len(left.keys) > minE { // rotate right through parent
				child.keys = insertAt(child.keys, 0, n.keys[ci-1])
				child.kids = insertAt(child.kids, 0, left.kids[len(left.kids)-1])
				n.keys[ci-1] = left.keys[len(left.keys)-1]
				left.keys = left.keys[:len(left.keys)-1]
				left.kids = left.kids[:len(left.kids)-1]
				return
			}
		}
		if ci < len(n.kids)-1 {
			rightSib := n.kids[ci+1].(*inner[K, V])
			if len(rightSib.keys) > minE { // rotate left through parent
				child.keys = append(child.keys, n.keys[ci])
				child.kids = append(child.kids, rightSib.kids[0])
				n.keys[ci] = rightSib.keys[0]
				rightSib.keys = removeAt(rightSib.keys, 0)
				rightSib.kids = removeAt(rightSib.kids, 0)
				return
			}
		}
		if ci > 0 { // merge into left sibling
			left := n.kids[ci-1].(*inner[K, V])
			left.keys = append(left.keys, n.keys[ci-1])
			left.keys = append(left.keys, child.keys...)
			left.kids = append(left.kids, child.kids...)
			n.keys = removeAt(n.keys, ci-1)
			n.kids = removeAt(n.kids, ci)
		} else { // merge right sibling into child
			rightSib := n.kids[ci+1].(*inner[K, V])
			child.keys = append(child.keys, n.keys[ci])
			child.keys = append(child.keys, rightSib.keys...)
			child.kids = append(child.kids, rightSib.kids...)
			n.keys = removeAt(n.keys, ci)
			n.kids = removeAt(n.kids, ci+1)
		}
	}
}

// Min returns the smallest key and its value.
func (t *Tree[K, V]) Min() (K, V, bool) {
	l := t.first
	for l != nil && len(l.keys) == 0 {
		l = l.next
	}
	if l == nil {
		var k K
		var v V
		return k, v, false
	}
	return l.keys[0], l.vals[0], true
}

// Max returns the largest key and its value.
func (t *Tree[K, V]) Max() (K, V, bool) {
	n := t.root
	for {
		switch nn := n.(type) {
		case *inner[K, V]:
			n = nn.kids[len(nn.kids)-1]
		case *leaf[K, V]:
			if len(nn.keys) == 0 {
				var k K
				var v V
				return k, v, false
			}
			i := len(nn.keys) - 1
			return nn.keys[i], nn.vals[i], true
		}
	}
}

// Ascend calls fn for every entry in key order until fn returns false.
func (t *Tree[K, V]) Ascend(fn func(k K, v V) bool) {
	for l := t.first; l != nil; l = l.next {
		for i := range l.keys {
			if !fn(l.keys[i], l.vals[i]) {
				return
			}
		}
	}
}

// AscendRange calls fn for entries with lo <= key < hi in order, until fn
// returns false.
func (t *Tree[K, V]) AscendRange(lo, hi K, fn func(k K, v V) bool) {
	l := t.root.findLeaf(t, lo)
	i, _ := t.leafIndex(l, lo)
	for l != nil {
		for ; i < len(l.keys); i++ {
			if !t.less(l.keys[i], hi) {
				return
			}
			if !fn(l.keys[i], l.vals[i]) {
				return
			}
		}
		l = l.next
		i = 0
	}
}

func insertAt[T any](s []T, i int, v T) []T {
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}
