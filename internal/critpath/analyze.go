// Critical-path extraction and blame attribution.
//
// The segmentation exploits the BSP structure every workload shares
// through core.Run: all ranks issue the same root-world MPI collective
// sequence in the same order, and every rank leaves a collective at the
// same virtual instant. Each collective's resolve instant is therefore
// a global synchronization point, and the interval between consecutive
// resolve instants has a well-defined critical rank: the rank that
// arrived last at the closing collective (it was continuously busy for
// the whole interval — everyone else got to wait for it). Attributing
// that rank's typed edges over the interval, with overlap resolved by
// cause precedence, explains the segment; summing segments explains the
// makespan.
package critpath

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// SchemaVersion is bumped whenever the JSON profile shape changes.
const SchemaVersion = 1

// CategoryTotal is one blame category's share of an interval.
type CategoryTotal struct {
	Cause   Cause   `json:"cause"`
	Seconds float64 `json:"seconds"`
	Share   float64 `json:"share"`
}

// AttrRow is the fine-grained attribution used by the pprof export:
// critical-path time keyed by (cause, subsystem, track).
type AttrRow struct {
	Cause     Cause   `json:"cause"`
	Subsystem string  `json:"subsystem"`
	Track     string  `json:"track"`
	Seconds   float64 `json:"seconds"`
}

// Segment is one critical-path interval between global sync points.
type Segment struct {
	StartSeconds float64 `json:"start_seconds"`
	EndSeconds   float64 `json:"end_seconds"`
	Track        string  `json:"track"`
	TopCause     Cause   `json:"top_cause"`
}

// PhaseProfile is the blame breakdown of one run phase ("init",
// "epoch:N", "term", or "run" when no marks were recorded).
type PhaseProfile struct {
	Phase        string          `json:"phase"`
	StartSeconds float64         `json:"start_seconds"`
	EndSeconds   float64         `json:"end_seconds"`
	Categories   []CategoryTotal `json:"categories"`
}

// WindowProfile is the blame breakdown inside one marked window (a
// fault-injection interval).
type WindowProfile struct {
	Name         string          `json:"name"`
	StartSeconds float64         `json:"start_seconds"`
	EndSeconds   float64         `json:"end_seconds"`
	Categories   []CategoryTotal `json:"categories"`
}

// WaitEdge is one aggregated vclock-level wait-for edge.
type WaitEdge struct {
	Proc    string  `json:"proc"`
	Kind    string  `json:"kind"`
	Label   string  `json:"label,omitempty"`
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// Profile is the analyzed critical path of one run.
type Profile struct {
	SchemaVersion   int     `json:"schema_version"`
	Label           string  `json:"label,omitempty"`
	MakespanSeconds float64 `json:"makespan_seconds"`
	// Coverage is the fraction of the makespan attributed to a typed
	// cause (1 − unattributed share).
	Coverage    float64         `json:"coverage"`
	Categories  []CategoryTotal `json:"categories"`
	Attribution []AttrRow       `json:"attribution"`
	Segments    []Segment       `json:"segments"`
	Phases      []PhaseProfile  `json:"phases"`
	Windows     []WindowProfile `json:"windows,omitempty"`
	WaitGraph   []WaitEdge      `json:"wait_graph,omitempty"`
}

// CategorySeconds returns the named category's attributed seconds (0
// when absent).
func (p *Profile) CategorySeconds(c Cause) float64 {
	for _, ct := range p.Categories {
		if ct.Cause == c {
			return ct.Seconds
		}
	}
	return 0
}

// CategoryShare returns the named category's share of the makespan.
func (p *Profile) CategoryShare(c Cause) float64 {
	for _, ct := range p.Categories {
		if ct.Cause == c {
			return ct.Share
		}
	}
	return 0
}

// TopCause returns the category with the largest attributed time
// (Unattributed excluded); empty for an empty profile.
func (p *Profile) TopCause() Cause {
	for _, ct := range p.Categories {
		if ct.Cause != Unattributed {
			return ct.Cause
		}
	}
	return ""
}

// span is one attributed elementary interval of the critical path.
type span struct {
	start, end time.Duration
	cause      Cause
	sub        string
	track      string
}

// Profile analyzes the recorded edges into a blame profile. label tags
// the output (e.g. "vpic sync shards=1").
func (r *Recorder) Profile(label string) *Profile {
	if r == nil {
		return &Profile{SchemaVersion: SchemaVersion, Label: label}
	}
	r.mu.Lock()
	edges := append([]Edge(nil), r.edges...)
	marks := append([]mark(nil), r.marks...)
	windows := append([]WindowMark(nil), r.windows...)
	makespan := r.makespan
	waits := make(map[waitKey]waitAgg, len(r.waits))
	for k, v := range r.waits {
		waits[k] = *v
	}
	r.mu.Unlock()

	sortEdges(edges)
	for _, e := range edges {
		if e.End > makespan {
			makespan = e.End
		}
	}
	for _, m := range marks {
		if m.at > makespan {
			makespan = m.at
		}
	}

	p := &Profile{SchemaVersion: SchemaVersion, Label: label,
		MakespanSeconds: makespan.Seconds()}
	if makespan <= 0 {
		p.Coverage = 1
		return p
	}

	segs := segments(edges, makespan)
	byTrack := edgesByTrack(edges)

	// Attribute every segment on its critical track, collecting the
	// elementary spans for exact phase/window folding.
	var spans []span
	catTotal := map[Cause]time.Duration{}
	attr := map[AttrRow]time.Duration{}
	for i := range segs {
		ss := sweep(byTrack[segs[i].track], segs[i].start, segs[i].end, segs[i].track)
		var top Cause
		segCat := map[Cause]time.Duration{}
		for _, s := range ss {
			d := s.end - s.start
			catTotal[s.cause] += d
			segCat[s.cause] += d
			attr[AttrRow{Cause: s.cause, Subsystem: s.sub, Track: s.track}] += d
		}
		top = topCause(segCat)
		p.Segments = append(p.Segments, Segment{
			StartSeconds: segs[i].start.Seconds(),
			EndSeconds:   segs[i].end.Seconds(),
			Track:        segs[i].track,
			TopCause:     top,
		})
		spans = append(spans, ss...)
	}

	p.Categories = categoryTotals(catTotal, makespan)
	p.Coverage = 1 - durationOf(catTotal, Unattributed).Seconds()/makespan.Seconds()

	rows := make([]AttrRow, 0, len(attr))
	for k, d := range attr {
		k.Seconds = d.Seconds()
		rows = append(rows, k)
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Cause != b.Cause {
			return a.Cause < b.Cause
		}
		if a.Subsystem != b.Subsystem {
			return a.Subsystem < b.Subsystem
		}
		return trackLess(a.Track, b.Track)
	})
	p.Attribution = rows

	p.Phases = foldPhases(spans, marks, makespan)
	p.Windows = foldWindows(spans, windows, makespan)
	p.WaitGraph = waitGraph(waits)
	return p
}

// seg is an internal critical-path segment.
type seg struct {
	start, end time.Duration
	track      string
}

// segments derives the critical-path segments from the root-world
// collective edges; without any, the whole run is one segment whose
// track holds the latest-ending edge.
func segments(edges []Edge, makespan time.Duration) []seg {
	type group struct {
		resolve time.Duration
		enter   time.Duration
		track   string
	}
	groups := map[string]*group{}
	for _, e := range edges {
		if e.Subsystem != "mpi" || !strings.HasPrefix(e.Detail, collPrefix) {
			continue
		}
		g := groups[e.Detail]
		if g == nil {
			g = &group{enter: -1}
			groups[e.Detail] = g
		}
		if e.End > g.resolve {
			g.resolve = e.End
		}
		// Critical rank: latest arrival; ties go to the lowest track so
		// the choice is a pure function of the edge multiset.
		if e.Start > g.enter || (e.Start == g.enter && trackLess(e.Track, g.track)) {
			g.enter = e.Start
			g.track = e.Track
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys) // zero-padded "coll:%08d" sorts in sequence order
	var out []seg
	prev := time.Duration(0)
	for _, k := range keys {
		g := groups[k]
		if g.resolve <= prev {
			continue // zero-length window (several collectives at one instant)
		}
		out = append(out, seg{start: prev, end: g.resolve, track: g.track})
		prev = g.resolve
	}
	if prev < makespan {
		out = append(out, seg{start: prev, end: makespan, track: tailTrack(edges, prev, out)})
	}
	return out
}

// tailTrack picks the critical track for the final (post-collective)
// segment: the track whose edges end latest inside it, falling back to
// the previous segment's track.
func tailTrack(edges []Edge, from time.Duration, prev []seg) string {
	var best string
	var bestEnd time.Duration = -1
	for _, e := range edges {
		if e.End <= from {
			continue
		}
		if e.End > bestEnd || (e.End == bestEnd && trackLess(e.Track, best)) {
			bestEnd = e.End
			best = e.Track
		}
	}
	if best != "" {
		return best
	}
	if n := len(prev); n > 0 {
		return prev[n-1].track
	}
	return ""
}

// edgesByTrack indexes non-rendezvous attribution edges per track.
// Collective rendezvous edges are included too — their cause is
// CollectiveWait, which is exactly the blame they carry.
func edgesByTrack(edges []Edge) map[string][]Edge {
	out := map[string][]Edge{}
	for _, e := range edges {
		if e.End <= e.Start {
			continue // zero-length rendezvous entries carry no time
		}
		out[e.Track] = append(out[e.Track], e)
	}
	return out
}

// sweep attributes (a, b] on one track: elementary intervals between
// edge boundaries, each blamed on the highest-precedence covering edge,
// gaps blamed Unattributed. Edges arrive canonically sorted.
func sweep(edges []Edge, a, b time.Duration, track string) []span {
	type clipped struct {
		start, end time.Duration
		cause      Cause
		sub        string
	}
	var cs []clipped
	points := []time.Duration{a, b}
	for _, e := range edges {
		if e.End <= a || e.Start >= b {
			continue
		}
		s, t := e.Start, e.End
		if s < a {
			s = a
		}
		if t > b {
			t = b
		}
		cs = append(cs, clipped{start: s, end: t, cause: e.Cause, sub: e.Subsystem})
		points = append(points, s, t)
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	var out []span
	emit := func(s span) {
		if n := len(out); n > 0 && out[n-1].cause == s.cause && out[n-1].sub == s.sub && out[n-1].end == s.start {
			out[n-1].end = s.end
			return
		}
		out = append(out, s)
	}
	for i := 0; i+1 < len(points); i++ {
		lo, hi := points[i], points[i+1]
		if hi <= lo {
			continue
		}
		best := clipped{cause: Unattributed}
		bestPrec := -1
		for _, c := range cs {
			if c.start > lo || c.end < hi {
				continue
			}
			prec := precedenceOf(c.cause)
			if prec > bestPrec ||
				(prec == bestPrec && (c.cause < best.cause || (c.cause == best.cause && c.sub < best.sub))) {
				best = c
				bestPrec = prec
			}
		}
		emit(span{start: lo, end: hi, cause: best.cause, sub: best.sub, track: track})
	}
	return out
}

// categoryTotals renders a cause→duration map as sorted totals,
// largest first (ties by cause name).
func categoryTotals(m map[Cause]time.Duration, total time.Duration) []CategoryTotal {
	out := make([]CategoryTotal, 0, len(m))
	for c, d := range m {
		out = append(out, CategoryTotal{Cause: c, Seconds: d.Seconds(),
			Share: float64(d) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Cause < out[j].Cause
	})
	return out
}

func durationOf(m map[Cause]time.Duration, c Cause) time.Duration { return m[c] }

// topCause returns the largest non-Unattributed cause of an interval
// (falling back to Unattributed when nothing else was present).
func topCause(m map[Cause]time.Duration) Cause {
	var best Cause = Unattributed
	var bestD time.Duration = -1
	for c, d := range m {
		if c == Unattributed {
			continue
		}
		if d > bestD || (d == bestD && c < best) {
			best, bestD = c, d
		}
	}
	if bestD < 0 {
		return Unattributed
	}
	return best
}

// foldPhases splits the attributed spans across the run's phase
// boundaries: init up to the init mark, one phase per epoch commit,
// term after the last commit. Spans straddling a boundary contribute
// their exact overlap to each side.
func foldPhases(spans []span, marks []mark, makespan time.Duration) []PhaseProfile {
	type phase struct {
		name       string
		start, end time.Duration
	}
	var phases []phase
	sort.SliceStable(marks, func(i, j int) bool {
		if marks[i].at != marks[j].at {
			return marks[i].at < marks[j].at
		}
		return marks[i].epoch < marks[j].epoch
	})
	prev := time.Duration(0)
	for _, m := range marks {
		if m.at <= prev {
			continue
		}
		name := fmt.Sprintf("epoch:%d", m.epoch)
		if m.epoch < 0 {
			name = "init"
		}
		phases = append(phases, phase{name: name, start: prev, end: m.at})
		prev = m.at
	}
	if len(phases) == 0 {
		phases = append(phases, phase{name: "run", start: 0, end: makespan})
	} else if prev < makespan {
		phases = append(phases, phase{name: "term", start: prev, end: makespan})
	}
	out := make([]PhaseProfile, len(phases))
	for i, ph := range phases {
		cat := map[Cause]time.Duration{}
		for _, s := range spans {
			if ov := overlap(s.start, s.end, ph.start, ph.end); ov > 0 {
				cat[s.cause] += ov
			}
		}
		out[i] = PhaseProfile{Phase: ph.name, StartSeconds: ph.start.Seconds(),
			EndSeconds: ph.end.Seconds(), Categories: categoryTotals(cat, ph.end-ph.start)}
	}
	return out
}

// foldWindows computes each marked window's blame breakdown.
func foldWindows(spans []span, windows []WindowMark, makespan time.Duration) []WindowProfile {
	sort.SliceStable(windows, func(i, j int) bool {
		if windows[i].Start != windows[j].Start {
			return windows[i].Start < windows[j].Start
		}
		return windows[i].Name < windows[j].Name
	})
	var out []WindowProfile
	for _, w := range windows {
		end := w.End
		if end == 0 || end > makespan {
			end = makespan
		}
		if end <= w.Start {
			continue
		}
		cat := map[Cause]time.Duration{}
		for _, s := range spans {
			if ov := overlap(s.start, s.end, w.Start, end); ov > 0 {
				cat[s.cause] += ov
			}
		}
		out = append(out, WindowProfile{Name: w.Name, StartSeconds: w.Start.Seconds(),
			EndSeconds: end.Seconds(), Categories: categoryTotals(cat, end-w.Start)})
	}
	return out
}

// overlap returns the length of the intersection of [a1,a2) and [b1,b2).
func overlap(a1, a2, b1, b2 time.Duration) time.Duration {
	lo, hi := a1, a2
	if b1 > lo {
		lo = b1
	}
	if b2 < hi {
		hi = b2
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// waitGraph renders the aggregated vclock wait-for edges sorted by
// (proc, kind, label).
func waitGraph(waits map[waitKey]waitAgg) []WaitEdge {
	out := make([]WaitEdge, 0, len(waits))
	for k, v := range waits {
		out = append(out, WaitEdge{Proc: k.proc, Kind: k.kind, Label: k.label,
			Count: v.count, Seconds: v.total.Seconds()})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Proc != b.Proc {
			return trackLess(a.Proc, b.Proc)
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Label < b.Label
	})
	return out
}
