package critpath

import (
	"bytes"
	"testing"
)

// FuzzCritpathJSON fuzzes the profile JSON decoder: any input that
// parses must re-marshal deterministically and round-trip to identical
// bytes (marshal ∘ parse is idempotent). This is the property the
// -critpath artifact comparison in CI relies on.
func FuzzCritpathJSON(f *testing.F) {
	if seed, err := sampleProfile().MarshalBytes(); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"schema_version":1,"makespan_seconds":1,"coverage":1}`))
	f.Add([]byte(`{"schema_version":1,"label":"x","categories":[{"cause":"compute","seconds":1,"share":1}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"schema_version":99}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParseProfile(data)
		if err != nil {
			return // invalid inputs must only error, never panic
		}
		b1, err := p.MarshalBytes()
		if err != nil {
			t.Fatalf("marshal of parsed profile failed: %v", err)
		}
		q, err := ParseProfile(b1)
		if err != nil {
			t.Fatalf("re-parse of marshaled profile failed: %v\n%s", err, b1)
		}
		b2, err := q.MarshalBytes()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("marshal/parse round trip not idempotent:\n%s\nvs\n%s", b1, b2)
		}
	})
}
