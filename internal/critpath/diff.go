// Differential profiles: where did the time move between two runs?
package critpath

import (
	"fmt"
	"io"
	"sort"
)

// DiffEntry is one category's movement between two profiles.
type DiffEntry struct {
	Cause        Cause   `json:"cause"`
	ASeconds     float64 `json:"a_seconds"`
	BSeconds     float64 `json:"b_seconds"`
	DeltaSeconds float64 `json:"delta_seconds"`
	AShare       float64 `json:"a_share"`
	BShare       float64 `json:"b_share"`
	DeltaShare   float64 `json:"delta_share"`
}

// DiffReport compares two profiles category by category.
type DiffReport struct {
	ALabel           string      `json:"a_label"`
	BLabel           string      `json:"b_label"`
	AMakespanSeconds float64     `json:"a_makespan_seconds"`
	BMakespanSeconds float64     `json:"b_makespan_seconds"`
	Entries          []DiffEntry `json:"entries"`
}

// Diff compares profile a against profile b, reporting for every
// category present in either how much attributed time (and share of
// makespan) moved. Entries are sorted by descending |delta seconds|,
// ties by cause name.
func Diff(a, b *Profile) *DiffReport {
	causes := map[Cause]bool{}
	for _, c := range a.Categories {
		causes[c.Cause] = true
	}
	for _, c := range b.Categories {
		causes[c.Cause] = true
	}
	rep := &DiffReport{
		ALabel:           orLabel(a.Label, "a"),
		BLabel:           orLabel(b.Label, "b"),
		AMakespanSeconds: a.MakespanSeconds,
		BMakespanSeconds: b.MakespanSeconds,
	}
	for c := range causes {
		e := DiffEntry{
			Cause:    c,
			ASeconds: a.CategorySeconds(c),
			BSeconds: b.CategorySeconds(c),
			AShare:   a.CategoryShare(c),
			BShare:   b.CategoryShare(c),
		}
		e.DeltaSeconds = e.BSeconds - e.ASeconds
		e.DeltaShare = e.BShare - e.AShare
		rep.Entries = append(rep.Entries, e)
	}
	sort.Slice(rep.Entries, func(i, j int) bool {
		ai, aj := abs(rep.Entries[i].DeltaSeconds), abs(rep.Entries[j].DeltaSeconds)
		if ai != aj {
			return ai > aj
		}
		return rep.Entries[i].Cause < rep.Entries[j].Cause
	})
	return rep
}

// Entry returns the diff entry for one cause (zero entry when absent).
func (d *DiffReport) Entry(c Cause) DiffEntry {
	for _, e := range d.Entries {
		if e.Cause == c {
			return e
		}
	}
	return DiffEntry{Cause: c}
}

// Render writes the human diff table.
func (d *DiffReport) Render(w io.Writer) {
	fmt.Fprintf(w, "critpath diff: %s (%.6fs) -> %s (%.6fs)\n",
		d.ALabel, d.AMakespanSeconds, d.BLabel, d.BMakespanSeconds)
	fmt.Fprintf(w, "  %-16s %14s %14s %14s %9s\n", "category", d.ALabel, d.BLabel, "delta", "dshare")
	for _, e := range d.Entries {
		fmt.Fprintf(w, "  %-16s %14.6f %14.6f %+14.6f %+8.1f%%\n",
			e.Cause, e.ASeconds, e.BSeconds, e.DeltaSeconds, e.DeltaShare*100)
	}
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
