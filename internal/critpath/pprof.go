// pprof export: the profile's critical-path attribution rendered in
// the pprof protobuf format (gzipped profile.proto), so `go tool
// pprof` and flamegraph viewers work on simulator output directly.
// Each attribution row becomes one sample with the synthetic stack
// track → subsystem → category (leaf first, so flamegraphs root at the
// blame category) and the attributed virtual nanoseconds as its value.
//
// The encoder is hand-rolled — profile.proto needs only varints and
// length-delimited fields, and taking a protobuf dependency for one
// writer is not worth it. Output is deterministic: rows arrive in the
// profile's canonical order and the gzip header carries no mtime.
package critpath

import (
	"compress/gzip"
	"io"
	"time"
)

// WritePprof writes the profile in pprof's gzipped protobuf format.
func (p *Profile) WritePprof(w io.Writer) error {
	zw := gzip.NewWriter(w)
	// The default header (zero ModTime, unset OS) encodes mtime 0 and
	// OS 255, so the compressed bytes are a pure function of the payload.
	if _, err := zw.Write(encodePprof(p)); err != nil {
		return err
	}
	return zw.Close()
}

// pprof profile.proto field numbers (only the ones emitted).
const (
	profSampleType   = 1
	profSample       = 2
	profLocation     = 4
	profFunction     = 5
	profStringTable  = 6
	profDurationNs   = 10
	profPeriodType   = 11
	profPeriod       = 12
	vtType           = 1
	vtUnit           = 2
	sampleLocationID = 1
	sampleValue      = 2
	locID            = 1
	locLine          = 4
	lineFunctionID   = 1
	funcID           = 1
	funcName         = 2
)

// encodePprof builds the uncompressed profile.proto message.
func encodePprof(p *Profile) []byte {
	st := newStrtab()
	typeIdx := st.index("critical-path")
	unitIdx := st.index("nanoseconds")

	// One function+location per unique frame string, ids assigned in
	// first-use order over the canonical attribution rows.
	frameID := map[string]uint64{}
	var frames []string
	frame := func(s string) uint64 {
		if id, ok := frameID[s]; ok {
			return id
		}
		id := uint64(len(frames) + 1)
		frameID[s] = id
		frames = append(frames, s)
		st.index(s)
		return id
	}

	var samples []byte
	for _, row := range p.Attribution {
		sub := row.Subsystem
		if sub == "" {
			sub = "(none)"
		}
		locs := []uint64{
			frame("track:" + row.Track),
			frame("subsystem:" + sub),
			frame(string(row.Cause)),
		}
		var sm enc
		sm.packedUvarints(sampleLocationID, locs)
		sm.packedVarints(sampleValue, []int64{int64(row.Seconds * float64(time.Second))})
		samples = appendMsg(samples, profSample, sm.buf)
	}

	var out enc
	var vt enc
	vt.varintField(vtType, int64(typeIdx))
	vt.varintField(vtUnit, int64(unitIdx))
	out.buf = appendMsg(out.buf, profSampleType, vt.buf)
	out.buf = append(out.buf, samples...)
	for i, name := range frames {
		id := uint64(i + 1)
		var ln enc
		ln.uvarintField(lineFunctionID, id)
		var loc enc
		loc.uvarintField(locID, id)
		loc.buf = appendMsg(loc.buf, locLine, ln.buf)
		out.buf = appendMsg(out.buf, profLocation, loc.buf)
		var fn enc
		fn.uvarintField(funcID, id)
		fn.varintField(funcName, int64(st.index(name)))
		out.buf = appendMsg(out.buf, profFunction, fn.buf)
	}
	for _, s := range st.table {
		out.bytesField(profStringTable, []byte(s))
	}
	out.varintField(profDurationNs, int64(p.MakespanSeconds*float64(time.Second)))
	out.buf = appendMsg(out.buf, profPeriodType, vt.buf)
	out.varintField(profPeriod, 1)
	return out.buf
}

// strtab is the profile's string table; index 0 is always "".
type strtab struct {
	table []string
	idx   map[string]int
}

func newStrtab() *strtab {
	return &strtab{table: []string{""}, idx: map[string]int{"": 0}}
}

func (s *strtab) index(v string) int {
	if i, ok := s.idx[v]; ok {
		return i
	}
	i := len(s.table)
	s.table = append(s.table, v)
	s.idx[v] = i
	return i
}

// enc is a minimal protobuf wire-format writer.
type enc struct{ buf []byte }

const (
	wireVarint = 0
	wireBytes  = 2
)

func (e *enc) tag(field, wire int) {
	e.uvarint(uint64(field)<<3 | uint64(wire))
}

func (e *enc) uvarint(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

func (e *enc) varintField(field int, v int64) {
	if v == 0 {
		return
	}
	e.tag(field, wireVarint)
	e.uvarint(uint64(v))
}

func (e *enc) uvarintField(field int, v uint64) {
	if v == 0 {
		return
	}
	e.tag(field, wireVarint)
	e.uvarint(v)
}

func (e *enc) bytesField(field int, b []byte) {
	e.tag(field, wireBytes)
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// packedUvarints writes a packed repeated uint64 field.
func (e *enc) packedUvarints(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var inner enc
	for _, v := range vs {
		inner.uvarint(v)
	}
	e.bytesField(field, inner.buf)
}

// packedVarints writes a packed repeated int64 field.
func (e *enc) packedVarints(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	var inner enc
	for _, v := range vs {
		inner.uvarint(uint64(v))
	}
	e.bytesField(field, inner.buf)
}

// appendMsg appends a length-delimited submessage field to buf.
func appendMsg(buf []byte, field int, msg []byte) []byte {
	var e enc
	e.buf = buf
	e.bytesField(field, msg)
	return e.buf
}

// PprofBytes returns the gzipped pprof encoding (convenience for
// tests and diff tooling).
func (p *Profile) PprofBytes() ([]byte, error) {
	var sb writerBuf
	if err := p.WritePprof(&sb); err != nil {
		return nil, err
	}
	return sb.b, nil
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
