package critpath

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"
	"time"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// almostEq compares float seconds with a tight tolerance (values are
// derived from integer nanoseconds, so exact in practice).
func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Edge{Track: "rank0", Cause: Compute, Start: 0, End: sec(1)})
	r.ObserveWait("rank0", "sleep", "", 0, sec(1), false)
	r.MarkInit(sec(1))
	r.MarkEpoch(0, sec(2))
	r.MarkWindow("w", 0, sec(1))
	r.SetMakespan(sec(3))
	if got := r.CrossShardWaits(); got != 0 {
		t.Fatalf("nil recorder CrossShardWaits = %d", got)
	}
	if got := r.Edges(); got != nil {
		t.Fatalf("nil recorder Edges = %v", got)
	}
	p := r.Profile("nil")
	if p == nil || p.SchemaVersion != SchemaVersion {
		t.Fatalf("nil recorder Profile = %+v", p)
	}
}

func TestRecordDropsZeroLengthExceptCollective(t *testing.T) {
	r := NewRecorder()
	r.Record(Edge{Track: "rank0", Cause: Compute, Start: sec(1), End: sec(1)})
	r.Record(Edge{Track: "rank0", Cause: CollectiveWait, Subsystem: "mpi",
		Detail: "coll:00000001", Start: sec(1), End: sec(1)})
	edges := r.Edges()
	if len(edges) != 1 {
		t.Fatalf("got %d edges, want 1 (zero-length non-collective dropped)", len(edges))
	}
	if edges[0].Detail != "coll:00000001" {
		t.Fatalf("kept wrong edge: %+v", edges[0])
	}
}

func TestSweepPrecedence(t *testing.T) {
	// A retry backoff nested inside a metadata bracket must win the
	// overlap; the metadata edge keeps only its uncovered flanks.
	r := NewRecorder()
	r.Record(Edge{Track: "rank0", Cause: Metadata, Subsystem: "pfs", Start: sec(0), End: sec(10)})
	r.Record(Edge{Track: "rank0", Cause: RetryBackoff, Subsystem: "ioreq", Start: sec(2), End: sec(5)})
	r.SetMakespan(sec(10))
	p := r.Profile("t")
	if !almostEq(p.CategorySeconds(RetryBackoff), 3) {
		t.Fatalf("retry-backoff = %v, want 3", p.CategorySeconds(RetryBackoff))
	}
	if !almostEq(p.CategorySeconds(Metadata), 7) {
		t.Fatalf("metadata = %v, want 7", p.CategorySeconds(Metadata))
	}
	if !almostEq(p.Coverage, 1) {
		t.Fatalf("coverage = %v, want 1", p.Coverage)
	}
}

func TestSegmentsPickCriticalRank(t *testing.T) {
	// Two ranks, one collective resolving at t=5. Rank 1 arrives last
	// (zero wait), rank 0 waited 2..5. The segment [0,5) belongs to
	// rank1; its compute edge covers it. The tail [5,8) belongs to the
	// track with the latest-ending edge (rank0's pfs transfer).
	r := NewRecorder()
	r.Record(Edge{Track: "rank0", Cause: Compute, Subsystem: "app", Start: sec(0), End: sec(2)})
	r.Record(Edge{Track: "rank0", Cause: CollectiveWait, Subsystem: "mpi",
		Detail: "coll:00000001", Start: sec(2), End: sec(5)})
	r.Record(Edge{Track: "rank1", Cause: Compute, Subsystem: "app", Start: sec(0), End: sec(5)})
	r.Record(Edge{Track: "rank1", Cause: CollectiveWait, Subsystem: "mpi",
		Detail: "coll:00000001", Start: sec(5), End: sec(5)})
	r.Record(Edge{Track: "rank0", Cause: PFSTransfer, Subsystem: "pfs",
		Detail: "pfs:gpfs:write", Start: sec(5), End: sec(8), Bytes: 1 << 20})
	r.SetMakespan(sec(8))
	p := r.Profile("t")
	if len(p.Segments) != 2 {
		t.Fatalf("got %d segments, want 2: %+v", len(p.Segments), p.Segments)
	}
	if p.Segments[0].Track != "rank1" || p.Segments[0].TopCause != Compute {
		t.Fatalf("segment 0 = %+v, want rank1/compute", p.Segments[0])
	}
	if p.Segments[1].Track != "rank0" || p.Segments[1].TopCause != PFSTransfer {
		t.Fatalf("segment 1 = %+v, want rank0/pfs-transfer", p.Segments[1])
	}
	if !almostEq(p.CategorySeconds(Compute), 5) {
		t.Fatalf("compute = %v, want 5", p.CategorySeconds(Compute))
	}
	if !almostEq(p.CategorySeconds(PFSTransfer), 3) {
		t.Fatalf("pfs-transfer = %v, want 3", p.CategorySeconds(PFSTransfer))
	}
	if !almostEq(p.Coverage, 1) {
		t.Fatalf("coverage = %v, want 1", p.Coverage)
	}
	if p.TopCause() != Compute {
		t.Fatalf("top cause = %v, want compute", p.TopCause())
	}
}

func TestUnattributedGap(t *testing.T) {
	r := NewRecorder()
	r.Record(Edge{Track: "rank0", Cause: Compute, Start: sec(0), End: sec(4)})
	r.SetMakespan(sec(10))
	p := r.Profile("t")
	if !almostEq(p.CategorySeconds(Unattributed), 6) {
		t.Fatalf("unattributed = %v, want 6", p.CategorySeconds(Unattributed))
	}
	if !almostEq(p.Coverage, 0.4) {
		t.Fatalf("coverage = %v, want 0.4", p.Coverage)
	}
}

func TestPhaseAndWindowFolding(t *testing.T) {
	r := NewRecorder()
	r.Record(Edge{Track: "rank0", Cause: Compute, Start: sec(0), End: sec(4)})
	r.Record(Edge{Track: "rank0", Cause: PFSTransfer, Subsystem: "pfs", Start: sec(4), End: sec(10)})
	r.MarkInit(sec(1))
	r.MarkEpoch(0, sec(6))
	r.MarkWindow("outage:gpfs", sec(5), sec(9))
	r.SetMakespan(sec(10))
	p := r.Profile("t")
	if len(p.Phases) != 3 {
		t.Fatalf("got %d phases, want 3 (init, epoch:0, term): %+v", len(p.Phases), p.Phases)
	}
	if p.Phases[0].Phase != "init" || p.Phases[1].Phase != "epoch:0" || p.Phases[2].Phase != "term" {
		t.Fatalf("phase names = %q %q %q", p.Phases[0].Phase, p.Phases[1].Phase, p.Phases[2].Phase)
	}
	// epoch:0 spans [1s, 6s): 3s compute + 2s pfs.
	var ep = p.Phases[1]
	if !almostEq(catSeconds(ep.Categories, Compute), 3) || !almostEq(catSeconds(ep.Categories, PFSTransfer), 2) {
		t.Fatalf("epoch:0 categories = %+v", ep.Categories)
	}
	if len(p.Windows) != 1 {
		t.Fatalf("got %d windows, want 1", len(p.Windows))
	}
	if !almostEq(catSeconds(p.Windows[0].Categories, PFSTransfer), 4) {
		t.Fatalf("window categories = %+v", p.Windows[0].Categories)
	}
}

func catSeconds(cats []CategoryTotal, c Cause) float64 {
	for _, ct := range cats {
		if ct.Cause == c {
			return ct.Seconds
		}
	}
	return 0
}

func TestWaitGraphAggregation(t *testing.T) {
	r := NewRecorder()
	r.ObserveWait("rank1", "event", "mpi:collective", sec(0), sec(2), false)
	r.ObserveWait("rank1", "event", "mpi:collective", sec(3), sec(4), true)
	r.ObserveWait("rank0", "sleep", "", sec(0), sec(1), false)
	r.SetMakespan(sec(4))
	if got := r.CrossShardWaits(); got != 1 {
		t.Fatalf("CrossShardWaits = %d, want 1", got)
	}
	p := r.Profile("t")
	if len(p.WaitGraph) != 2 {
		t.Fatalf("wait graph = %+v, want 2 entries", p.WaitGraph)
	}
	// Sorted by proc with numeric awareness: rank0 before rank1.
	if p.WaitGraph[0].Proc != "rank0" || p.WaitGraph[1].Proc != "rank1" {
		t.Fatalf("wait graph order = %+v", p.WaitGraph)
	}
	if p.WaitGraph[1].Count != 2 || !almostEq(p.WaitGraph[1].Seconds, 3) {
		t.Fatalf("aggregated edge = %+v", p.WaitGraph[1])
	}
}

func TestTrackLess(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"rank2", "rank10", true},
		{"rank10", "rank2", false},
		{"rank1", "rank1", false},
		{"rank1", "stream:x", true},
		{"alpha", "beta", true},
	}
	for _, c := range cases {
		if got := trackLess(c.a, c.b); got != c.want {
			t.Errorf("trackLess(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := sampleProfile()
	b, err := p.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseProfile(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := q.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("round trip changed bytes:\n%s\nvs\n%s", b, b2)
	}
}

func TestParseProfileRejectsWrongSchema(t *testing.T) {
	if _, err := ParseProfile([]byte(`{"schema_version": 99}`)); err == nil {
		t.Fatal("expected schema mismatch error")
	}
	if _, err := ParseProfile([]byte(`{`)); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestDiff(t *testing.T) {
	a := sampleProfile()
	b := sampleProfile()
	b.Label = "async"
	// Move 3 of the 6 pfs seconds into compute.
	for i := range b.Categories {
		switch b.Categories[i].Cause {
		case PFSTransfer:
			b.Categories[i].Seconds -= 3
			b.Categories[i].Share = b.Categories[i].Seconds / b.MakespanSeconds
		case Compute:
			b.Categories[i].Seconds += 3
			b.Categories[i].Share = b.Categories[i].Seconds / b.MakespanSeconds
		}
	}
	d := Diff(a, b)
	if d.ALabel != "sync" || d.BLabel != "async" {
		t.Fatalf("labels = %q, %q", d.ALabel, d.BLabel)
	}
	pfs := d.Entry(PFSTransfer)
	if !almostEq(pfs.DeltaSeconds, -3) {
		t.Fatalf("pfs delta = %v, want -3", pfs.DeltaSeconds)
	}
	comp := d.Entry(Compute)
	if !almostEq(comp.DeltaSeconds, 3) {
		t.Fatalf("compute delta = %v, want +3", comp.DeltaSeconds)
	}
	var buf bytes.Buffer
	d.Render(&buf)
	if !strings.Contains(buf.String(), "critpath diff") {
		t.Fatalf("render output missing header:\n%s", buf.String())
	}
}

func TestRender(t *testing.T) {
	var buf bytes.Buffer
	sampleProfile().Render(&buf)
	out := buf.String()
	for _, want := range []string{"critical path: sync", "makespan 10.000000s", "pfs-transfer", "compute"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPprofDeterministicAndWellFormed(t *testing.T) {
	p := sampleProfile()
	b1, err := p.PprofBytes()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p.PprofBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("pprof bytes differ between encodes")
	}
	zr, err := gzip.NewReader(bytes.NewReader(b1))
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("empty pprof payload")
	}
	// The string table must contain the category names in cleartext.
	for _, want := range []string{"critical-path", "nanoseconds", string(PFSTransfer), "track:rank0"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Fatalf("pprof payload missing %q", want)
		}
	}
}

// sampleProfile builds a small profile through the real analysis path.
func sampleProfile() *Profile {
	r := NewRecorder()
	r.Record(Edge{Track: "rank0", Cause: Compute, Subsystem: "app", Start: 0, End: sec(4)})
	r.Record(Edge{Track: "rank0", Cause: PFSTransfer, Subsystem: "pfs",
		Detail: "pfs:gpfs:write", Start: sec(4), End: sec(10), Bytes: 8 << 20})
	r.ObserveWait("rank0", "sleep", "", 0, sec(4), false)
	r.MarkEpoch(0, sec(10))
	r.SetMakespan(sec(10))
	return r.Profile("sync")
}

func TestProfileDeterministicAcrossRecordOrder(t *testing.T) {
	build := func(perm []int) *Profile {
		edges := []Edge{
			{Track: "rank0", Cause: Compute, Subsystem: "app", Start: 0, End: sec(2)},
			{Track: "rank1", Cause: Compute, Subsystem: "app", Start: 0, End: sec(5)},
			{Track: "rank0", Cause: CollectiveWait, Subsystem: "mpi", Detail: "coll:00000001", Start: sec(2), End: sec(5)},
			{Track: "rank1", Cause: CollectiveWait, Subsystem: "mpi", Detail: "coll:00000001", Start: sec(5), End: sec(5)},
		}
		r := NewRecorder()
		for _, i := range perm {
			r.Record(edges[i])
		}
		r.SetMakespan(sec(5))
		return r.Profile("perm")
	}
	base, err := build([]int{0, 1, 2, 3}).MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	for _, perm := range [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}} {
		b, err := build(perm).MarshalBytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base, b) {
			t.Fatalf("profile bytes depend on record order (perm %v)", perm)
		}
	}
}
