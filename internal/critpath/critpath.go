// Package critpath is the simulator's causal critical-path profiler.
//
// Subsystems record every blocking interval as a typed Edge — what a
// process was waiting on, from when to when in virtual time — into a
// Recorder attached to the run's System. After the run, analysis (see
// analyze.go) exploits the BSP structure of core.Run: the global MPI
// collective sequence partitions the makespan into segments, each
// segment's critical rank is the last rank to arrive at the closing
// collective, and that rank's typed edges attribute the segment's
// virtual time into blame categories (compute, collective-wait,
// queue-wait, stage-copy, PFS-transfer, metadata, fsync/journal,
// retry/backoff, fault-stall). The result is a Profile: per-category
// and per-epoch blame explaining where the makespan went, exportable
// as deterministic JSON (json.go), a pprof profile (pprof.go), and a
// Perfetto overlay (internal/perfetto).
//
// Everything recorded is a pure function of virtual time, so the edge
// multiset — and therefore every exported byte — is identical across
// -shards counts and -parallel workers. The Recorder itself only
// guards its slices with a mutex; canonical ordering is imposed once,
// at analysis time.
//
// The package deliberately imports nothing from the rest of the
// simulator: every instrumented layer (vclock, mpi, asyncvol,
// taskengine, ioreq, pfs, faults, core) imports critpath, never the
// reverse. The Recorder structurally implements vclock.WaitObserver.
package critpath

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Cause classifies what a blocked process was waiting on.
type Cause string

// Blame categories, in ascending attribution precedence (see
// precedenceOf). When two edges of one track overlap, the higher
// precedence cause wins the overlap: a retry backoff inside a metadata
// bracket is retry time, not metadata time.
const (
	// Compute is application computation between I/O phases.
	Compute Cause = "compute"
	// CollectiveWait is time blocked in an MPI collective rendezvous.
	CollectiveWait Cause = "collective-wait"
	// QueueWait is time blocked on asynchronous machinery: backpressure,
	// drain barriers, event-set waits, stream scheduling, task futures.
	QueueWait Cause = "queue-wait"
	// StageCopy is the transactional staging copy of the async VOL.
	StageCopy Cause = "stage-copy"
	// PFSTransfer is time inside a parallel-file-system data transfer.
	PFSTransfer Cause = "pfs-transfer"
	// Metadata is time inside file-system metadata operations.
	Metadata Cause = "metadata"
	// VisibilityWait is consistency-model cost: the time a rank spends
	// making its writes visible to other ranks (POSIX locking, session
	// lease validation, MPI-IO sync tracking, publish barriers at close/
	// sync/commit points). Recorded by pfs.Consistency.
	VisibilityWait Cause = "visibility-wait"
	// FsyncJournal is durability cost: fsync barriers and write-ahead
	// journal appends.
	FsyncJournal Cause = "fsync-journal"
	// RetryBackoff is time sleeping between I/O retry attempts.
	RetryBackoff Cause = "retry-backoff"
	// FaultStall is time directly injected by a fault schedule
	// (metadata stalls, background-stream stalls).
	FaultStall Cause = "fault-stall"
	// Unattributed is critical-path time no typed edge covered. Analysis
	// emits it; subsystems never record it.
	Unattributed Cause = "unattributed"
)

// precedenceOf ranks causes for overlap resolution; higher wins.
func precedenceOf(c Cause) int {
	switch c {
	case FaultStall:
		return 10
	case RetryBackoff:
		return 9
	case FsyncJournal:
		return 8
	case VisibilityWait:
		return 7
	case Metadata:
		return 6
	case PFSTransfer:
		return 5
	case StageCopy:
		return 4
	case QueueWait:
		return 3
	case CollectiveWait:
		return 2
	case Compute:
		return 1
	default:
		return 0
	}
}

// collPrefix marks collective-rendezvous edges of the root MPI world;
// analysis groups them by detail to find the global synchronization
// points that bound critical-path segments.
const collPrefix = "coll:"

// Edge is one typed blocking interval on one process's timeline.
type Edge struct {
	// Track is the process name (e.g. "rank3", "stream:asyncvol:rank3").
	Track string
	// Cause is the blame category.
	Cause Cause
	// Subsystem names the recording layer ("mpi", "pfs", "asyncvol", …).
	Subsystem string
	// Detail refines the cause ("drain", "pfs:gpfs:write", "coll:0000001").
	Detail string
	// Start and End bound the interval in virtual time, half-open.
	Start, End time.Duration
	// Bytes is the payload size for data-movement edges; 0 otherwise.
	Bytes int64
}

// mark is an epoch/phase boundary instant recorded by core.
type mark struct {
	epoch int // -1 for the init boundary
	at    time.Duration
}

// WindowMark is a named interval of interest — a fault-injection
// window — whose blame breakdown the profile reports separately.
type WindowMark struct {
	Name       string
	Start, End time.Duration // End 0 means "until end of run"
}

// waitKey aggregates the vclock-level wait-for graph.
type waitKey struct {
	proc, kind, label string
}

type waitAgg struct {
	count int64
	total time.Duration
}

// Recorder collects causal edges for one run. All methods are safe for
// concurrent use; a nil *Recorder no-ops everywhere, so instrumented
// layers call unconditionally.
type Recorder struct {
	mu       sync.Mutex
	edges    []Edge
	marks    []mark
	windows  []WindowMark
	waits    map[waitKey]*waitAgg
	makespan time.Duration
	cross    int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{waits: make(map[waitKey]*waitAgg)}
}

// Record appends one edge. Zero-length edges are dropped unless they
// carry a collective-rendezvous detail (the last-arriving rank's
// zero-wait entry is what identifies the segment's critical rank).
func (r *Recorder) Record(e Edge) {
	if r == nil {
		return
	}
	if e.End <= e.Start && !strings.HasPrefix(e.Detail, collPrefix) {
		return
	}
	r.mu.Lock()
	r.edges = append(r.edges, e)
	r.mu.Unlock()
}

// ObserveWait implements vclock.WaitObserver (structurally): every
// Proc.Sleep and Event.Wait reports here. The per-(proc, kind, label)
// aggregation forms the run's wait-for graph; cross-shard waits are
// counted separately but deliberately not keyed — whether an edge
// crossed a shard boundary depends on the shard count, and exported
// artifacts must not.
func (r *Recorder) ObserveWait(proc, kind, label string, start, end time.Duration, crossShard bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	k := waitKey{proc: proc, kind: kind, label: label}
	agg := r.waits[k]
	if agg == nil {
		agg = &waitAgg{}
		r.waits[k] = agg
	}
	agg.count++
	agg.total += end - start
	if crossShard {
		r.cross++
	}
	r.mu.Unlock()
}

// MarkInit records the end of the init phase (rank 0, after the init
// barrier).
func (r *Recorder) MarkInit(at time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.marks = append(r.marks, mark{epoch: -1, at: at})
	r.mu.Unlock()
}

// MarkEpoch records the commit instant of one epoch (rank 0, after the
// epoch's record is committed).
func (r *Recorder) MarkEpoch(epoch int, at time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.marks = append(r.marks, mark{epoch: epoch, at: at})
	r.mu.Unlock()
}

// MarkWindow registers a named interval (e.g. a fault window) for
// separate blame reporting.
func (r *Recorder) MarkWindow(name string, start, end time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.windows = append(r.windows, WindowMark{Name: name, Start: start, End: end})
	r.mu.Unlock()
}

// SetMakespan records the run's final virtual instant. Without it the
// profile falls back to the latest edge end.
func (r *Recorder) SetMakespan(d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if d > r.makespan {
		r.makespan = d
	}
	r.mu.Unlock()
}

// CrossShardWaits returns how many observed waits crossed a shard
// boundary — nonzero only under a sharded engine. Diagnostic; never
// exported (it varies with the shard count by construction).
func (r *Recorder) CrossShardWaits() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cross
}

// Edges returns a canonically-sorted copy of the recorded edges.
func (r *Recorder) Edges() []Edge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Edge(nil), r.edges...)
	r.mu.Unlock()
	sortEdges(out)
	return out
}

// sortEdges imposes the canonical edge order: (Start, End, Track,
// Cause, Subsystem, Detail, Bytes). Append order under the recorder
// mutex is scheduler-dependent; this order is a pure function of the
// edge multiset, which is itself a pure function of the simulation.
func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Track != b.Track {
			return trackLess(a.Track, b.Track)
		}
		if a.Cause != b.Cause {
			return a.Cause < b.Cause
		}
		if a.Subsystem != b.Subsystem {
			return a.Subsystem < b.Subsystem
		}
		if a.Detail != b.Detail {
			return a.Detail < b.Detail
		}
		return a.Bytes < b.Bytes
	})
}

// trackLess orders track names with numeric-suffix awareness, so
// "rank2" sorts before "rank10".
func trackLess(a, b string) bool {
	pa, na, oka := splitNumericSuffix(a)
	pb, nb, okb := splitNumericSuffix(b)
	if oka && okb && pa == pb {
		return na < nb
	}
	return a < b
}

// splitNumericSuffix splits a trailing decimal run off s.
func splitNumericSuffix(s string) (prefix string, n int64, ok bool) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return s, 0, false
	}
	for _, c := range s[i:] {
		n = n*10 + int64(c-'0')
	}
	return s[:i], n, true
}
