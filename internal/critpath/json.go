// Deterministic JSON serialization of profiles, plus the human
// summary table the -critpath flag prints. All slices are emitted in
// the canonical orders analyze.go imposes, so the bytes are identical
// across shard counts and parallel workers.
package critpath

import (
	"encoding/json"
	"fmt"
	"io"
)

// MarshalBytes renders the profile as indented JSON with a trailing
// newline. The output is deterministic: field order is fixed by the
// struct, slice order by analysis.
func (p *Profile) MarshalBytes() ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteJSON writes the profile's JSON form to w.
func (p *Profile) WriteJSON(w io.Writer) error {
	b, err := p.MarshalBytes()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ParseProfile decodes a profile previously produced by MarshalBytes.
func ParseProfile(data []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("critpath: parse profile: %w", err)
	}
	if p.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("critpath: profile schema %d, want %d", p.SchemaVersion, SchemaVersion)
	}
	return &p, nil
}

// Render writes the human summary: the category blame table, coverage,
// and per-phase top causes.
func (p *Profile) Render(w io.Writer) {
	fmt.Fprintf(w, "critical path: %s\n", orLabel(p.Label, "(unlabeled run)"))
	fmt.Fprintf(w, "  makespan %.6fs, coverage %.1f%%\n", p.MakespanSeconds, p.Coverage*100)
	if len(p.Categories) == 0 {
		fmt.Fprintln(w, "  (no attribution recorded)")
		return
	}
	fmt.Fprintf(w, "  %-16s %14s %8s\n", "category", "seconds", "share")
	for _, c := range p.Categories {
		fmt.Fprintf(w, "  %-16s %14.6f %7.1f%%\n", c.Cause, c.Seconds, c.Share*100)
	}
	for _, ph := range p.Phases {
		top := Cause("-")
		if len(ph.Categories) > 0 {
			top = ph.Categories[0].Cause
		}
		fmt.Fprintf(w, "  phase %-10s %10.6fs..%-10.6fs top=%s\n",
			ph.Phase, ph.StartSeconds, ph.EndSeconds, top)
	}
	for _, win := range p.Windows {
		top := Cause("-")
		if len(win.Categories) > 0 {
			top = win.Categories[0].Cause
		}
		fmt.Fprintf(w, "  window %-10s %9.6fs..%-10.6fs top=%s\n",
			win.Name, win.StartSeconds, win.EndSeconds, top)
	}
}

func orLabel(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}
