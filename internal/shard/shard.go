// Package shard parses shard-count specs and plans the rank/target
// partition for the sharded event engine (internal/vclock.Coordinator).
//
// A spec is what the CLIs accept for -shards:
//
//	auto          pick from the core budget (GOMAXPROCS / sweep workers)
//	N             exactly N shards (N >= 1)
//	N:block       N shards, contiguous rank blocks (the default policy,
//	              which keeps a node's ranks on one shard)
//	N:stripe      N shards, round-robin rank assignment
//
// A Plan assigns every rank and every PFS target to a shard. Plans are
// always a disjoint cover — each rank and target belongs to exactly one
// shard — and degenerate inputs (a single rank, more shards than ranks,
// zero targets) fall back to a single-shard plan rather than erroring,
// so callers can apply a user spec to any workload size.
package shard

import (
	"fmt"
	"strconv"
	"strings"
)

// Policies for rank assignment.
const (
	PolicyBlock  = "block"
	PolicyStripe = "stripe"
)

// MaxShards bounds accepted shard counts; beyond this the per-shard
// batches are too small for the coordinator's window overhead.
const MaxShards = 256

// Spec is a parsed -shards value.
type Spec struct {
	// Auto picks the shard count from the runtime core budget.
	Auto bool
	// N is the requested shard count when !Auto.
	N int
	// Policy is the rank-assignment policy (PolicyBlock or PolicyStripe).
	Policy string
}

// ParseSpec parses a -shards flag value.
func ParseSpec(raw string) (Spec, error) {
	s := strings.TrimSpace(strings.ToLower(raw))
	policy := PolicyBlock
	if i := strings.IndexByte(s, ':'); i >= 0 {
		switch p := s[i+1:]; p {
		case PolicyBlock, PolicyStripe:
			policy = p
		default:
			return Spec{}, fmt.Errorf("shard: unknown policy %q (want %s or %s)", p, PolicyBlock, PolicyStripe)
		}
		s = s[:i]
	}
	if s == "auto" {
		return Spec{Auto: true, Policy: policy}, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return Spec{}, fmt.Errorf("shard: invalid shard count %q", raw)
	}
	if n < 1 || n > MaxShards {
		return Spec{}, fmt.Errorf("shard: shard count %d outside 1..%d", n, MaxShards)
	}
	return Spec{N: n, Policy: policy}, nil
}

// Resolve returns the effective shard count for a run of the given rank
// count with the given core budget (cores already divided by any sweep
// fan-out). Degenerate combinations collapse to 1: fewer than 2 ranks,
// fewer than 2 cores for an auto spec, or a request exceeding the rank
// count.
func (sp Spec) Resolve(ranks, cores int) int {
	n := sp.N
	if sp.Auto {
		n = cores
		if n > MaxShards {
			n = MaxShards
		}
	}
	if n > ranks {
		n = ranks
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Plan is a disjoint cover of ranks and targets by shards.
type Plan struct {
	Shards      int
	Policy      string
	RankShard   []int // rank → shard
	TargetShard []int // PFS target index → shard
}

// NewPlan partitions ranks and targets across shards using the spec's
// policy. Degenerate inputs (ranks < 2, shards > ranks after Resolve's
// clamp, non-positive shards) yield a clean single-shard plan. Targets
// are striped across shards regardless of policy — target count is tiny
// and striping balances them.
func NewPlan(sp Spec, ranks, targets, shards int) (Plan, error) {
	if ranks < 0 || targets < 0 {
		return Plan{}, fmt.Errorf("shard: negative sizes (ranks %d, targets %d)", ranks, targets)
	}
	policy := sp.Policy
	if policy == "" {
		policy = PolicyBlock
	}
	if policy != PolicyBlock && policy != PolicyStripe {
		return Plan{}, fmt.Errorf("shard: unknown policy %q", policy)
	}
	if shards < 1 || ranks < 2 || shards > ranks {
		shards = 1
	}
	p := Plan{
		Shards:      shards,
		Policy:      policy,
		RankShard:   make([]int, ranks),
		TargetShard: make([]int, targets),
	}
	if shards > 1 {
		switch policy {
		case PolicyStripe:
			for r := range p.RankShard {
				p.RankShard[r] = r % shards
			}
		default: // block: contiguous ranges, remainder spread over the first shards
			per, rem := ranks/shards, ranks%shards
			r := 0
			for s := 0; s < shards; s++ {
				n := per
				if s < rem {
					n++
				}
				for i := 0; i < n; i++ {
					p.RankShard[r] = s
					r++
				}
			}
		}
		for t := range p.TargetShard {
			p.TargetShard[t] = t % shards
		}
	}
	return p, nil
}

// Validate checks the disjoint-cover invariant: every rank and target
// is assigned exactly one shard in [0, Shards), and when Shards > 1
// every shard owns at least one rank (no empty shard — empty shards
// would add coordinator overhead for nothing).
func (p Plan) Validate() error {
	if p.Shards < 1 {
		return fmt.Errorf("shard: plan with %d shards", p.Shards)
	}
	seen := make([]int, p.Shards)
	for r, s := range p.RankShard {
		if s < 0 || s >= p.Shards {
			return fmt.Errorf("shard: rank %d assigned to shard %d of %d", r, s, p.Shards)
		}
		seen[s]++
	}
	if p.Shards > 1 {
		for s, n := range seen {
			if n == 0 {
				return fmt.Errorf("shard: shard %d owns no ranks", s)
			}
		}
	}
	for t, s := range p.TargetShard {
		if s < 0 || s >= p.Shards {
			return fmt.Errorf("shard: target %d assigned to shard %d of %d", t, s, p.Shards)
		}
	}
	return nil
}

// String renders the spec back to flag form.
func (sp Spec) String() string {
	base := "auto"
	if !sp.Auto {
		base = strconv.Itoa(sp.N)
	}
	if sp.Policy != "" && sp.Policy != PolicyBlock {
		return base + ":" + sp.Policy
	}
	return base
}
