package shard

import "testing"

// FuzzParseSpec asserts the spec grammar never panics, that anything
// which parses round-trips through String, and that Resolve of a parsed
// spec stays within [1, min(ranks, MaxShards)] for every budget.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"auto", "1", "2", "4", "16", "256",
		"4:block", "4:stripe", "auto:stripe", " 8:block ",
		"0", "-1", "257", "1000000000000000000000", "four",
		"4:zigzag", "", ":", "auto:", "4:", "a u t o",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseSpec(s)
		if err != nil {
			return
		}
		re, err := ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", sp.String(), s, err)
		}
		if re != sp {
			t.Fatalf("round-trip of %q: %+v != %+v", s, re, sp)
		}
		for _, ranks := range []int{0, 1, 2, 7, 4096} {
			for _, cores := range []int{0, 1, 4, 1 << 20} {
				n := sp.Resolve(ranks, cores)
				if n < 1 {
					t.Fatalf("Resolve(%d, %d) of %q = %d < 1", ranks, cores, s, n)
				}
				if ranks >= 1 && n > ranks {
					t.Fatalf("Resolve(%d, %d) of %q = %d > ranks", ranks, cores, s, n)
				}
				if n > MaxShards {
					t.Fatalf("Resolve(%d, %d) of %q = %d > MaxShards", ranks, cores, s, n)
				}
			}
		}
	})
}

// FuzzPlan asserts every plan over arbitrary sizes is a disjoint cover
// (Validate passes), that degenerate inputs (1 rank, more shards than
// ranks, targets ≫ shards) fall back to exactly one shard, and that the
// block policy assigns contiguous monotone ranges.
func FuzzPlan(f *testing.F) {
	f.Add(10, 4, 3, false)
	f.Add(1, 72, 4, false)   // 1 rank → N=1
	f.Add(3, 500, 8, true)   // targets ≫ shards, shards > ranks → N=1
	f.Add(4096, 72, 4, true) // the bench workload shape
	f.Add(0, 0, 0, false)
	f.Add(2, 1, 2, false)
	f.Add(100, 0, 256, true)
	f.Fuzz(func(t *testing.T, ranks, targets, shards int, stripe bool) {
		if ranks < 0 {
			ranks = -ranks
		}
		if targets < 0 {
			targets = -targets
		}
		if ranks > 1<<16 {
			ranks %= 1 << 16
		}
		if targets > 1<<12 {
			targets %= 1 << 12
		}
		policy := PolicyBlock
		if stripe {
			policy = PolicyStripe
		}
		p, err := NewPlan(Spec{N: shards, Policy: policy}, ranks, targets, shards)
		if err != nil {
			t.Fatalf("NewPlan(%d, %d, %d): %v", ranks, targets, shards, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("NewPlan(%d, %d, %d) invalid: %v", ranks, targets, shards, err)
		}
		if len(p.RankShard) != ranks || len(p.TargetShard) != targets {
			t.Fatalf("plan sizes %d/%d, want %d/%d", len(p.RankShard), len(p.TargetShard), ranks, targets)
		}
		degenerate := shards < 1 || ranks < 2 || shards > ranks
		if degenerate && p.Shards != 1 {
			t.Fatalf("degenerate NewPlan(%d, %d, %d) kept %d shards", ranks, targets, shards, p.Shards)
		}
		if !degenerate && p.Shards != shards {
			t.Fatalf("NewPlan(%d, %d, %d) resolved to %d shards", ranks, targets, shards, p.Shards)
		}
		if policy == PolicyBlock {
			for r := 1; r < len(p.RankShard); r++ {
				if p.RankShard[r] < p.RankShard[r-1] {
					t.Fatalf("block plan not monotone at rank %d: %v...", r, p.RankShard[:r+1])
				}
			}
		}
	})
}
