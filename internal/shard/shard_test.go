package shard

import "testing"

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
		err  bool
	}{
		{in: "auto", want: Spec{Auto: true, Policy: PolicyBlock}},
		{in: "1", want: Spec{N: 1, Policy: PolicyBlock}},
		{in: "4", want: Spec{N: 4, Policy: PolicyBlock}},
		{in: "4:stripe", want: Spec{N: 4, Policy: PolicyStripe}},
		{in: "auto:stripe", want: Spec{Auto: true, Policy: PolicyStripe}},
		{in: " 8:block ", want: Spec{N: 8, Policy: PolicyBlock}},
		{in: "0", err: true},
		{in: "-3", err: true},
		{in: "1000000", err: true},
		{in: "four", err: true},
		{in: "4:zigzag", err: true},
		{in: "", err: true},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error, got %+v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestResolve(t *testing.T) {
	cases := []struct {
		spec         Spec
		ranks, cores int
		want         int
	}{
		{Spec{Auto: true}, 4096, 4, 4},
		{Spec{Auto: true}, 4096, 1, 1},
		{Spec{Auto: true}, 2, 16, 2},
		{Spec{N: 4}, 4096, 1, 4}, // explicit N ignores the core budget
		{Spec{N: 8}, 3, 16, 3},
		{Spec{N: 4}, 1, 16, 1}, // 1 rank → serial
		{Spec{N: 4}, 0, 16, 1},
	}
	for _, c := range cases {
		if got := c.spec.Resolve(c.ranks, c.cores); got != c.want {
			t.Errorf("%+v.Resolve(%d, %d) = %d, want %d", c.spec, c.ranks, c.cores, got, c.want)
		}
	}
}

func TestPlanBlockContiguous(t *testing.T) {
	p, err := NewPlan(Spec{N: 3}, 10, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// 10 ranks over 3 shards: blocks of 4, 3, 3.
	want := []int{0, 0, 0, 0, 1, 1, 1, 2, 2, 2}
	for r, s := range p.RankShard {
		if s != want[r] {
			t.Fatalf("RankShard = %v, want %v", p.RankShard, want)
		}
	}
	// Block assignment is monotone: contiguous ranks share shards.
	for r := 1; r < len(p.RankShard); r++ {
		if p.RankShard[r] < p.RankShard[r-1] {
			t.Fatalf("block plan not monotone: %v", p.RankShard)
		}
	}
}

func TestPlanStripe(t *testing.T) {
	p, err := NewPlan(Spec{N: 4, Policy: PolicyStripe}, 10, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for r, s := range p.RankShard {
		if s != r%4 {
			t.Fatalf("stripe RankShard = %v", p.RankShard)
		}
	}
}

func TestPlanDegenerateFallback(t *testing.T) {
	cases := []struct {
		ranks, targets, shards int
	}{
		{1, 72, 4},   // 1 rank
		{0, 0, 4},    // empty
		{3, 1, 8},    // shards > ranks
		{100, 72, 0}, // non-positive shard count
	}
	for _, c := range cases {
		p, err := NewPlan(Spec{N: c.shards}, c.ranks, c.targets, c.shards)
		if err != nil {
			t.Fatalf("NewPlan(%+v): %v", c, err)
		}
		if p.Shards != 1 {
			t.Errorf("NewPlan(%+v).Shards = %d, want 1", c, p.Shards)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("NewPlan(%+v): %v", c, err)
		}
		for r, s := range p.RankShard {
			if s != 0 {
				t.Errorf("degenerate plan assigns rank %d to shard %d", r, s)
			}
		}
	}
}
