package asyncio_test

import (
	"os"
	"runtime"
	"testing"

	"asyncio/internal/experiments"
	"asyncio/internal/simbench"
)

// TestBenchRegression guards the simulator's own performance: it runs
// the self-benchmark fresh and compares per-event cost against the
// committed BENCH_simulator.json baseline with a 2× tolerance (wide
// enough for machine-to-machine variance, tight enough to catch an
// accidental O(n) regression in the event engine or a per-event
// allocation creeping back in). Only regressions fail — getting faster
// is fine; refresh the baseline with `asyncio-bench -selfbench` when
// the simulator legitimately changes.
func TestBenchRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("selfbench takes a few seconds; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("per-event timing limits are meaningless under the race detector's slowdown")
	}
	f, err := os.Open("BENCH_simulator.json")
	if err != nil {
		t.Fatalf("missing committed baseline: %v", err)
	}
	defer f.Close()
	base, err := simbench.ReadJSON(f)
	if err != nil {
		t.Fatalf("parsing baseline: %v", err)
	}

	fresh, err := simbench.Run(experiments.ReducedScale())
	if err != nil {
		t.Fatal(err)
	}

	const tolerance = 2.0
	// Absolute floors keep near-zero baselines (e.g. 0.00005
	// allocs/event on the pooled sleep path) from turning scheduler
	// noise into a 100× "regression".
	const nsFloor = 500.0
	const allocsFloor = 1.0

	for _, b := range base.Results {
		fr := fresh.Find(b.Name)
		if fr == nil {
			t.Errorf("%s: in baseline but not in fresh run (case renamed? refresh the baseline)", b.Name)
			continue
		}
		if limit := max2(b.NsPerEvent, nsFloor) * tolerance; fr.NsPerEvent > limit {
			t.Errorf("%s: %.0f ns/event, baseline %.0f (limit %.0f)",
				b.Name, fr.NsPerEvent, b.NsPerEvent, limit)
		}
		if limit := max2(b.AllocsPerEvent, allocsFloor) * tolerance; fr.AllocsPerEvent > limit {
			t.Errorf("%s: %.3f allocs/event, baseline %.3f (limit %.3f)",
				b.Name, fr.AllocsPerEvent, b.AllocsPerEvent, limit)
		}
		if fr.Events <= 0 {
			t.Errorf("%s: fresh run fired no simulator events", b.Name)
		}
		t.Logf("%s: %.0f ns/event (baseline %.0f), %.3f allocs/event (baseline %.3f), %d events",
			b.Name, fr.NsPerEvent, b.NsPerEvent, fr.AllocsPerEvent, b.AllocsPerEvent, fr.Events)
	}
}

// TestShardedSpeedup is the sharding acceptance gate: on a machine with
// at least 4 cores, the 4-shard coordinator must push the 4096-proc
// scaling workload at >= 2x the serial engine's events/s. Skipped on
// small machines (the coordinator cannot beat physics) and under the
// race detector (its serialization erases the parallelism under test).
func TestShardedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement takes seconds; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race-detector serialization makes speedup ratios meaningless")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 cores for a 4-shard speedup, have %d", runtime.NumCPU())
	}
	cases := simbench.ShardCases()
	var serial, sharded simbench.Result
	for _, c := range cases {
		r, err := simbench.Measure(c)
		if err != nil {
			t.Fatal(err)
		}
		switch c.Name {
		case "engine-4096":
			serial = r
		case "engine-sharded":
			sharded = r
		}
	}
	if serial.EventsPerSec <= 0 || sharded.EventsPerSec <= 0 {
		t.Fatalf("missing measurements: serial %+v, sharded %+v", serial, sharded)
	}
	ratio := sharded.EventsPerSec / serial.EventsPerSec
	t.Logf("serial %.2f Mev/s, 4 shards %.2f Mev/s: %.2fx",
		serial.EventsPerSec/1e6, sharded.EventsPerSec/1e6, ratio)
	if ratio < 2.0 {
		t.Errorf("4-shard speedup %.2fx, want >= 2x", ratio)
	}
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
