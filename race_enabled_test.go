//go:build race

package asyncio_test

// raceEnabled reports whether the race detector is compiled in; its
// ~10× slowdown makes wall-clock regression limits meaningless.
const raceEnabled = true
