// Package asyncio is the public facade of the asynchronous parallel I/O
// evaluation library — a full reproduction of "Evaluating Asynchronous
// Parallel I/O on HPC Systems" (IPDPS 2023) as a self-contained Go
// system.
//
// The library has four layers, re-exported here:
//
//   - Storage: an HDF5-like self-describing container (hdf5 types) with
//     a VOL interception layer. The Native connector is synchronous;
//     the AsyncConnector stages writes and prefetches reads on a
//     background stream, charging the transactional overhead the
//     paper's model is built around.
//   - Systems: discrete-event models of Summit (GPFS) and Cori-Haswell
//     (Lustre) — node memory systems, parallel file systems with
//     saturation, small-request penalties and day-to-day contention —
//     all driven by a deterministic virtual clock.
//   - Model: the paper's epoch-time equations, history-driven I/O-rate
//     regressions (Eq. 4), r² (Eq. 5), and the adaptive sync/async
//     advisor.
//   - Workloads and experiments: VPIC-IO, BD-CATS-IO, Nyx, Castro,
//     EQSIM and Cosmoflow drivers plus generators that regenerate every
//     figure of the paper's evaluation.
//
// Quick start:
//
//	clk := asyncio.NewClock()
//	sys := asyncio.Summit(clk, 16) // 16 nodes, 96 ranks
//	rep, _, err := vpicio.Run(sys, vpicio.Config{Mode: asyncio.ForceAsync})
//
// See examples/ for runnable programs and cmd/asyncio-bench for the
// figure regeneration harness.
package asyncio

import (
	"asyncio/internal/asyncvol"
	"asyncio/internal/core"
	"asyncio/internal/experiments"
	"asyncio/internal/hdf5"
	"asyncio/internal/ioreq"
	"asyncio/internal/model"
	"asyncio/internal/systems"
	"asyncio/internal/taskengine"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
	"asyncio/internal/vol"
)

// Virtual clock and processes.
type (
	// Clock is the deterministic discrete-event virtual clock.
	Clock = vclock.Clock
	// Proc is a process registered with a Clock.
	Proc = vclock.Proc
)

// NewClock returns a virtual clock at time zero.
func NewClock() *Clock { return vclock.New() }

// Storage layer.
type (
	// File is an open container (HDF5-like).
	File = hdf5.File
	// Dataspace describes dataset extents and hyperslab selections.
	Dataspace = hdf5.Dataspace
	// Datatype is a dataset element type.
	Datatype = hdf5.Datatype
	// Store is the byte-addressable backing of a File.
	Store = hdf5.Store
	// CreateProps configures dataset creation (chunking).
	CreateProps = hdf5.CreateProps
	// TransferProps parameterizes one hdf5-level transfer.
	TransferProps = hdf5.TransferProps
)

// Predefined datatypes.
var (
	I8  = hdf5.I8
	I16 = hdf5.I16
	I32 = hdf5.I32
	I64 = hdf5.I64
	U8  = hdf5.U8
	U16 = hdf5.U16
	U32 = hdf5.U32
	U64 = hdf5.U64
	F32 = hdf5.F32
	F64 = hdf5.F64
)

// Store constructors.
var (
	NewMemStore     = hdf5.NewMemStore
	NewNullStore    = hdf5.NewNullStore
	CreateFileStore = hdf5.CreateFileStore
	OpenFileStore   = hdf5.OpenFileStore
)

// Little-endian slice conversion helpers for dataset buffers.
var (
	Float32sToBytes = hdf5.Float32sToBytes
	BytesToFloat32s = hdf5.BytesToFloat32s
	Float64sToBytes = hdf5.Float64sToBytes
	BytesToFloat64s = hdf5.BytesToFloat64s
	Int32sToBytes   = hdf5.Int32sToBytes
	BytesToInt32s   = hdf5.BytesToInt32s
	Int64sToBytes   = hdf5.Int64sToBytes
	BytesToInt64s   = hdf5.BytesToInt64s
)

// CreateFile initializes a fresh container on store.
func CreateFile(store Store, opts ...hdf5.FileOption) (*File, error) {
	return hdf5.Create(store, opts...)
}

// OpenFile loads an existing container.
func OpenFile(store Store, opts ...hdf5.FileOption) (*File, error) {
	return hdf5.Open(store, opts...)
}

// NewSimpleSpace returns a simple dataspace.
func NewSimpleSpace(dims ...uint64) (*Dataspace, error) { return hdf5.NewSimple(dims...) }

// VOL layer.
type (
	// Connector decides how file/dataset operations execute.
	Connector = vol.Connector
	// VFile is a connector-mediated file handle.
	VFile = vol.File
	// VGroup is a connector-mediated group handle.
	VGroup = vol.Group
	// VDataset is a connector-mediated dataset handle.
	VDataset = vol.Dataset
	// Props carries per-call context through the VOL.
	Props = vol.Props
	// NativeConnector is the synchronous pass-through connector.
	NativeConnector = vol.Native
	// AsyncConnector is the asynchronous background-stream connector.
	AsyncConnector = asyncvol.Connector
	// AsyncOptions configures an AsyncConnector.
	AsyncOptions = asyncvol.Options
	// CopyModel charges the transactional staging overhead.
	CopyModel = asyncvol.CopyModel
	// CopyFunc adapts a function to CopyModel.
	CopyFunc = asyncvol.CopyFunc
	// EventSet tracks in-flight asynchronous operations (H5ES analog).
	EventSet = asyncvol.EventSet
	// TaskEngine is the Argobots-analog background tasking engine.
	TaskEngine = taskengine.Engine
)

// I/O request pipeline: every dataset data operation is one IORequest
// executed by an IOPipeline of IOStages (validate → resolve → optional
// aggregation → execute). Both connectors route through it.
type (
	// IORequest is one dataset read/write descriptor.
	IORequest = ioreq.Request
	// IOPipeline executes IORequests through its stages.
	IOPipeline = ioreq.Pipeline
	// IOStage is one pipeline stage.
	IOStage = ioreq.Stage
	// AggConfig enables and bounds the write-aggregation stage.
	AggConfig = ioreq.AggConfig
	// AggStage coalesces adjacent same-dataset writes (two-phase
	// collective buffering).
	AggStage = ioreq.AggStage
	// Span is a hierarchical trace of an operation's path through the
	// stack (pipeline stages, staging copies, PFS transfers).
	Span = trace.Span
	// SpanEvent is one recorded event on a Span.
	SpanEvent = trace.SpanEvent
)

// Pipeline constructors.
var (
	// NewIOPipeline builds validate → resolve → extra stages → execute.
	NewIOPipeline = ioreq.New
	// NewAggStage returns a write-aggregation stage.
	NewAggStage = ioreq.NewAgg
	// NewSpan returns an empty root span.
	NewSpan = trace.NewSpan
)

// NewTaskEngine returns a tasking engine on clk.
func NewTaskEngine(clk *Clock) *TaskEngine { return taskengine.New(clk) }

// NewAsyncConnector returns an asynchronous connector with its own
// background stream.
func NewAsyncConnector(eng *TaskEngine, name string, opts AsyncOptions) *AsyncConnector {
	return asyncvol.New(eng, name, opts)
}

// NewEventSet returns an empty event set.
func NewEventSet() *EventSet { return asyncvol.NewEventSet() }

// Systems layer.
type (
	// System is an assembled machine model.
	System = systems.System
)

// Machine constructors.
var (
	// Summit builds a Summit allocation (6 ranks/node, GPFS).
	Summit = systems.Summit
	// CoriHaswell builds a Cori-Haswell allocation (32 ranks/node,
	// Lustre).
	CoriHaswell = systems.CoriHaswell
	// WithContention enables deterministic day-to-day backend
	// contention.
	WithContention = systems.WithContention
)

// Application driver and model.
type (
	// RunConfig parameterizes an iterative application run.
	RunConfig = core.Config
	// Hooks are the workload callbacks of the run loop.
	Hooks = core.Hooks
	// RankCtx is the per-rank execution context.
	RankCtx = core.RankCtx
	// Report is a run's outcome: records, estimates, estimator.
	Report = core.Report
	// Estimator is the paper's feedback-loop model state.
	Estimator = model.Estimator
	// EpochEstimate is a model prediction for one epoch (Eq. 2).
	EpochEstimate = model.EpochEstimate
	// IOMode labels an epoch's I/O strategy (Sync or Async).
	IOMode = trace.Mode
	// Record is one epoch's measurements.
	Record = trace.Record
	// RunResult summarizes a run.
	RunResult = trace.RunResult
)

// Run policies.
const (
	// ForceSync runs every epoch synchronously.
	ForceSync = core.ForceSync
	// ForceAsync runs every epoch asynchronously.
	ForceAsync = core.ForceAsync
	// Adaptive lets the model pick the mode per epoch.
	Adaptive = core.Adaptive
)

// I/O mode labels.
const (
	// Sync labels synchronous epochs.
	Sync = trace.Sync
	// Async labels asynchronous epochs.
	Async = trace.Async
)

// RunApp executes an iterative application on sys (see core.Run).
func RunApp(sys *System, cfg RunConfig, hooks Hooks) (*Report, error) {
	return core.Run(sys, cfg, hooks)
}

// NewEstimator returns an empty model estimator.
func NewEstimator(opts ...model.EstimatorOption) *Estimator {
	return model.NewEstimator(opts...)
}

// Experiments layer.
type (
	// ExperimentTable is a regenerated paper figure.
	ExperimentTable = experiments.Table
	// ExperimentScale bounds an experiment sweep.
	ExperimentScale = experiments.Scale
)

// Experiment scales and registry.
var (
	// ReducedScale completes in seconds (tests, benches).
	ReducedScale = experiments.ReducedScale
	// FullScale reproduces the paper's node counts.
	FullScale = experiments.FullScale
	// Experiments maps figure ids to generators.
	Experiments = experiments.Registry
)
