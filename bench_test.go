// Benchmarks regenerating every table and figure of the paper at
// reduced scale (one bench per figure; see DESIGN.md's experiment
// index). Each bench reports the headline metrics of its figure via
// b.ReportMetric — e.g. the largest-scale synchronous and asynchronous
// aggregate bandwidths — so `go test -bench=.` doubles as a compact
// reproduction report. cmd/asyncio-bench -scale full runs the
// paper-scale sweeps.
package asyncio_test

import (
	"math"
	"testing"

	"asyncio/internal/experiments"
)

// runFig generates the figure once per bench iteration and reports the
// last point of the named series, in the table's Y units. For sweep
// figures only the simulations run inside the timed loop; the estimate
// fits and table assembly are invariant across iterations and happen
// once afterwards, so the bench measures the simulator rather than the
// regression code.
func runFig(b *testing.B, id string, metrics map[string]string) *experiments.Table {
	b.Helper()
	scale := experiments.ReducedScale()
	var tab *experiments.Table
	if isSweepFig(id) {
		var data *experiments.SweepData
		for i := 0; i < b.N; i++ {
			var err error
			data, err = experiments.SimulateSweep(id, scale)
			if err != nil {
				b.Fatal(err)
			}
		}
		var err error
		tab, err = experiments.AssembleSweep(data)
		if err != nil {
			b.Fatal(err)
		}
	} else {
		gen := experiments.Registry()[id]
		if gen == nil {
			b.Fatalf("unknown experiment %q", id)
		}
		for i := 0; i < b.N; i++ {
			var err error
			tab, err = gen(scale)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	for series, metric := range metrics {
		s, ok := tab.SeriesByName(series)
		if !ok || len(s.Y) == 0 {
			b.Fatalf("%s: series %q missing", id, series)
		}
		b.ReportMetric(s.Y[len(s.Y)-1], metric)
	}
	return tab
}

func BenchmarkFig1Scenarios(b *testing.B) {
	runFig(b, "fig1", map[string]string{
		"sync epoch":  "sync_s",
		"async epoch": "async_s",
	})
}

func BenchmarkFig3aVPICWriteSummit(b *testing.B) {
	runFig(b, "fig3a", map[string]string{
		"sync":  "sync_GBps",
		"async": "async_GBps",
	})
}

func BenchmarkFig3bVPICWriteCori(b *testing.B) {
	runFig(b, "fig3b", map[string]string{
		"sync":  "sync_GBps",
		"async": "async_GBps",
	})
}

func BenchmarkFig3cBDCATSReadSummit(b *testing.B) {
	runFig(b, "fig3c", map[string]string{
		"sync":  "sync_GBps",
		"async": "async_GBps",
	})
}

func BenchmarkFig3dBDCATSReadCori(b *testing.B) {
	runFig(b, "fig3d", map[string]string{
		"sync":  "sync_GBps",
		"async": "async_GBps",
	})
}

func BenchmarkFig4aNyxSummit(b *testing.B) {
	runFig(b, "fig4a", map[string]string{
		"sync":  "sync_GBps",
		"async": "async_GBps",
	})
}

func BenchmarkFig4bNyxCori(b *testing.B) {
	runFig(b, "fig4b", map[string]string{
		"sync":  "sync_GBps",
		"async": "async_GBps",
	})
}

func BenchmarkFig4cCastroSummit(b *testing.B) {
	runFig(b, "fig4c", map[string]string{
		"sync":  "sync_GBps",
		"async": "async_GBps",
	})
}

func BenchmarkFig4dCastroCori(b *testing.B) {
	runFig(b, "fig4d", map[string]string{
		"sync":  "sync_GBps",
		"async": "async_GBps",
	})
}

func BenchmarkFig5CosmoflowSummit(b *testing.B) {
	runFig(b, "fig5", map[string]string{
		"sync":  "sync_GBps",
		"async": "async_GBps",
	})
}

func BenchmarkFig6EQSIMSummit(b *testing.B) {
	runFig(b, "fig6", map[string]string{
		"sync":  "sync_GBps",
		"async": "async_GBps",
	})
}

func BenchmarkFig7NyxOverlapCori(b *testing.B) {
	// Reports the application duration at the most checkpoint-heavy
	// configuration (1 step per compute phase) under both modes.
	gen := experiments.Registry()["fig7"]
	scale := experiments.ReducedScale()
	scale.CoriNodes = []int{2} // the sweep is over steps/phase, not nodes
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = gen(scale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, name := range []string{"sync", "async"} {
		s, ok := tab.SeriesByName(name)
		if !ok {
			b.Fatalf("missing series %q", name)
		}
		b.ReportMetric(s.Y[0], name+"_dur_s")
	}
}

func BenchmarkFig8VPICVariability(b *testing.B) {
	// Reports the coefficient of variation of each mode across days —
	// the paper's point is async CV ≈ 0.
	gen := experiments.Registry()["fig8"]
	scale := experiments.ReducedScale()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = gen(scale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, name := range []string{"sync", "async"} {
		s, _ := tab.SeriesByName(name)
		b.ReportMetric(cv(s.Y), name+"_cv")
	}
}

func BenchmarkModelAccuracy(b *testing.B) {
	scale := experiments.ReducedScale()
	var syncR2, asyncR2 float64
	for i := 0; i < b.N; i++ {
		var err error
		syncR2, asyncR2, err = experiments.R2Values(scale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(syncR2, "sync_r2")
	b.ReportMetric(asyncR2, "async_r2")
}

func BenchmarkMicroMemcpy(b *testing.B) {
	runFig(b, "micro-mem", map[string]string{
		"summit node": "summit_GBps",
		"cori node":   "cori_GBps",
	})
}

func BenchmarkMicroGPUTransfer(b *testing.B) {
	runFig(b, "micro-gpu", map[string]string{
		"pinned":   "pinned_GBps",
		"unpinned": "unpinned_GBps",
	})
}

func BenchmarkAblationZeroCopy(b *testing.B) {
	runFig(b, "abl-zerocopy", map[string]string{
		"with copy": "withcopy_io_s",
		"zero-copy": "zerocopy_io_s",
	})
}

func BenchmarkAblationFitKinds(b *testing.B) {
	runFig(b, "abl-fit", map[string]string{
		"measured": "measured_GBps",
	})
}

func BenchmarkAblationStaging(b *testing.B) {
	runFig(b, "abl-staging", map[string]string{
		"dram": "dram_GBps",
		"ssd":  "ssd_GBps",
	})
}

func isSweepFig(id string) bool {
	for _, s := range experiments.SweepIDs() {
		if s == id {
			return true
		}
	}
	return false
}

func cv(ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	if mean == 0 {
		return 0
	}
	var v float64
	for _, y := range ys {
		v += (y - mean) * (y - mean)
	}
	v /= float64(len(ys))
	return math.Sqrt(v) / mean
}
