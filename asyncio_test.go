// Facade tests: exercise the public API surface end to end, the way a
// downstream user would.
package asyncio_test

import (
	"testing"
	"time"

	"asyncio"
)

func TestFacadeStorageRoundtrip(t *testing.T) {
	store := asyncio.NewMemStore()
	f, err := asyncio.CreateFile(store)
	if err != nil {
		t.Fatal(err)
	}
	space, err := asyncio.NewSimpleSpace(100)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := f.Root().CreateDataset(nil, "x", asyncio.F32, space, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float32, 100)
	for i := range in {
		in[i] = float32(i)
	}
	if err := ds.Write(nil, nil, asyncio.Float32sToBytes(in)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(nil); err != nil {
		t.Fatal(err)
	}
	f2, err := asyncio.OpenFile(store)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := f2.Root().OpenDataset(nil, "x")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 400)
	if err := ds2.Read(nil, nil, out); err != nil {
		t.Fatal(err)
	}
	got := asyncio.BytesToFloat32s(out)
	if got[42] != 42 {
		t.Fatalf("roundtrip[42] = %v", got[42])
	}
}

func TestFacadeAsyncConnector(t *testing.T) {
	clk := asyncio.NewClock()
	eng := asyncio.NewTaskEngine(clk)
	copied := int64(0)
	conn := asyncio.NewAsyncConnector(eng, "user", asyncio.AsyncOptions{
		Copy: asyncio.CopyFunc(func(p *asyncio.Proc, n int64) {
			copied += n
			if p != nil {
				p.Sleep(time.Millisecond)
			}
		}),
		Materialize: true,
	})
	f, err := conn.Create(asyncio.Props{}, asyncio.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	clk.Go("user", func(p *asyncio.Proc) {
		defer close(done)
		pr := asyncio.Props{Proc: p, Set: asyncio.NewEventSet()}
		space, _ := asyncio.NewSimpleSpace(64)
		ds, err := f.Root().CreateDataset(pr, "d", asyncio.U8, space, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := ds.Write(pr, nil, make([]byte, 64)); err != nil {
			t.Error(err)
		}
		if err := f.Close(pr); err != nil {
			t.Error(err)
		}
		conn.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	<-done
	if copied != 64 {
		t.Fatalf("copy model saw %d bytes, want 64", copied)
	}
}

func TestFacadeRunApp(t *testing.T) {
	clk := asyncio.NewClock()
	sys := asyncio.Summit(clk, 1)
	rep, err := asyncio.RunApp(sys, asyncio.RunConfig{
		Workload:   "facade-demo",
		Iterations: 4,
		Mode:       asyncio.Adaptive,
	}, asyncio.Hooks{
		Compute: func(ctx *asyncio.RankCtx, iter int) error {
			ctx.P.Sleep(10 * time.Second)
			return nil
		},
		IO: func(ctx *asyncio.RankCtx, iter int, mode asyncio.IOMode) (int64, error) {
			if mode == asyncio.Sync {
				ctx.Sys.PFS.WriteData(ctx.P, 32<<20)
			} else {
				ctx.Sys.MemcpyModel(ctx.Rank)(ctx.P, 32<<20)
			}
			return 32 << 20, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Run.Records) != 4 {
		t.Fatalf("records = %d", len(rep.Run.Records))
	}
	if rep.Run.System != "summit" {
		t.Fatalf("system = %s", rep.Run.System)
	}
}

func TestFacadeSystemsAndScales(t *testing.T) {
	clk := asyncio.NewClock()
	cori := asyncio.CoriHaswell(clk, 2, asyncio.WithContention(1, 2))
	if cori.Size() != 64 {
		t.Fatalf("size = %d", cori.Size())
	}
	if f := cori.PFS.ContentionFactor(); f <= 0 || f > 1 {
		t.Fatalf("contention = %v", f)
	}
	if len(asyncio.ReducedScale().SummitNodes) == 0 {
		t.Fatal("reduced scale empty")
	}
	full := asyncio.FullScale()
	if full.SummitNodes[len(full.SummitNodes)-1] != 2048 {
		t.Fatalf("full scale must reach the paper's 2048 Summit nodes, got %v", full.SummitNodes)
	}
	if len(asyncio.Experiments()) < 19 {
		t.Fatalf("registry too small: %d", len(asyncio.Experiments()))
	}
}

func TestFacadeEstimator(t *testing.T) {
	est := asyncio.NewEstimator()
	for i := 0; i < 3; i++ {
		est.ObserveComp(10 * time.Second)
		est.ObserveSyncIO(1<<30, 64, 2*time.Second)
		est.ObserveOverhead(1<<30, 64, 200*time.Millisecond)
	}
	ee, ok := est.EstimateEpoch(1<<30, 64)
	if !ok {
		t.Fatal("estimator not ready")
	}
	if ee.Better() != asyncio.Async {
		t.Fatalf("Better = %v", ee.Better())
	}
}
