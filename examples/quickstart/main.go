// Quickstart: use the storage layer as a plain self-describing
// container library — create a file on disk, write datasets with
// hyperslab selections and attributes, read back, and re-open.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"asyncio"
)

func main() {
	dir, err := os.MkdirTemp("", "asyncio-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "simulation.ah5")

	store, err := asyncio.CreateFileStore(path)
	if err != nil {
		log.Fatal(err)
	}
	f, err := asyncio.CreateFile(store)
	if err != nil {
		log.Fatal(err)
	}

	// A group with run metadata.
	run, err := f.Root().CreateGroup(nil, "run42")
	if err != nil {
		log.Fatal(err)
	}
	if err := run.SetAttrString(nil, "code", "demo"); err != nil {
		log.Fatal(err)
	}
	if err := run.SetAttrInt64(nil, "timesteps", 1000); err != nil {
		log.Fatal(err)
	}

	// A 2-D chunked dataset written one tile at a time.
	space, err := asyncio.NewSimpleSpace(64, 64)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := run.CreateDataset(nil, "density", asyncio.F64, space,
		&asyncio.CreateProps{ChunkDims: []uint64{16, 16}})
	if err != nil {
		log.Fatal(err)
	}
	tile := make([]float64, 32*32)
	for i := range tile {
		tile[i] = float64(i) * 0.5
	}
	sel, _ := asyncio.NewSimpleSpace(64, 64)
	if err := sel.SelectHyperslab([]uint64{16, 16}, nil, []uint64{1, 1}, []uint64{32, 32}); err != nil {
		log.Fatal(err)
	}
	if err := ds.Write(nil, sel, asyncio.Float64sToBytes(tile)); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(nil); err != nil {
		log.Fatal(err)
	}
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}

	// Re-open and inspect.
	store2, err := asyncio.OpenFileStore(path)
	if err != nil {
		log.Fatal(err)
	}
	defer store2.Close()
	f2, err := asyncio.OpenFile(store2)
	if err != nil {
		log.Fatal(err)
	}
	run2, err := f2.Root().OpenGroup(nil, "run42")
	if err != nil {
		log.Fatal(err)
	}
	code, _ := run2.AttrString(nil, "code")
	steps, _ := run2.AttrInt64(nil, "timesteps")
	ds2, err := run2.OpenDataset(nil, "density")
	if err != nil {
		log.Fatal(err)
	}
	back := make([]byte, 32*32*8)
	if err := ds2.Read(nil, sel, back); err != nil {
		log.Fatal(err)
	}
	vals := asyncio.BytesToFloat64s(back)

	fmt.Printf("file: %s\n", path)
	fmt.Printf("run42: code=%q timesteps=%d\n", code, steps)
	fmt.Printf("density: dims=%v dtype=%v chunked=%v chunks=%d\n",
		ds2.Dims(), ds2.Dtype(), ds2.Chunked(), ds2.NumChunks())
	fmt.Printf("tile roundtrip: first=%.1f middle=%.1f last=%.1f\n",
		vals[0], vals[len(vals)/2], vals[len(vals)-1])
}
