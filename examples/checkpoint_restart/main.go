// Checkpoint/restart example: a time-series dataset that grows with
// every checkpoint (chunked + extendable, the H5Dset_extent pattern),
// stored with the deflate filter, written asynchronously, and then
// restarted from — demonstrating the storage-layer features the
// evaluation's checkpoint workloads are built on.
//
//	go run ./examples/checkpoint_restart
package main

import (
	"fmt"
	"log"

	"asyncio"
)

const (
	stateLen    = 1 << 10 // elements per checkpoint
	checkpoints = 6
)

func main() {
	store := asyncio.NewMemStore()

	// --- First "job": run and checkpoint asynchronously. ---
	clk := asyncio.NewClock()
	eng := asyncio.NewTaskEngine(clk)
	conn := asyncio.NewAsyncConnector(eng, "job1", asyncio.AsyncOptions{Materialize: true})
	f, err := conn.Create(asyncio.Props{}, store)
	if err != nil {
		log.Fatal(err)
	}

	clk.Go("job1", func(p *asyncio.Proc) {
		pr := asyncio.Props{Proc: p, Set: asyncio.NewEventSet()}
		space, _ := asyncio.NewSimpleSpace(stateLen)
		ds, err := f.Root().CreateDataset(pr, "state", asyncio.F64, space,
			&asyncio.CreateProps{ChunkDims: []uint64{stateLen}, Deflate: true})
		if err != nil {
			log.Fatal(err)
		}
		state := make([]float64, stateLen)
		for step := 0; step < checkpoints; step++ {
			// "Compute": evolve the state.
			for i := range state {
				state[i] = float64(step) + float64(i)*1e-3
			}
			// Grow the dataset to hold this checkpoint and append it
			// asynchronously; the write overlaps the next compute phase.
			total := uint64(stateLen) * uint64(step+1)
			raw := ds.Unwrap()
			if err := raw.Extend(nil, []uint64{total}); err != nil {
				log.Fatal(err)
			}
			sel, _ := asyncio.NewSimpleSpace(total)
			if err := sel.SelectHyperslab(
				[]uint64{uint64(step) * stateLen}, nil,
				[]uint64{1}, []uint64{stateLen}); err != nil {
				log.Fatal(err)
			}
			if err := ds.Write(pr, sel, asyncio.Float64sToBytes(state)); err != nil {
				log.Fatal(err)
			}
		}
		if err := f.Close(pr); err != nil {
			log.Fatal(err)
		}
		conn.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		log.Fatal(err)
	}

	// --- Second "job": restart from the latest checkpoint. ---
	f2, err := asyncio.OpenFile(store)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := f2.Root().OpenDataset(nil, "state")
	if err != nil {
		log.Fatal(err)
	}
	dims := ds.Dims()
	steps := dims[0] / stateLen
	fmt.Printf("restart file: dataset %v (%d checkpoints), deflate=%v, %d B stored for %d B logical\n",
		dims, steps, ds.Deflated(), ds.StoredBytes(), ds.NBytes())

	last, _ := asyncio.NewSimpleSpace(dims[0])
	if err := last.SelectHyperslab(
		[]uint64{(steps - 1) * stateLen}, nil,
		[]uint64{1}, []uint64{stateLen}); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, stateLen*8)
	if err := ds.Read(nil, last, buf); err != nil {
		log.Fatal(err)
	}
	state := asyncio.BytesToFloat64s(buf)
	fmt.Printf("resumed from checkpoint %d: state[0]=%.3f state[last]=%.3f\n",
		steps-1, state[0], state[len(state)-1])
}
