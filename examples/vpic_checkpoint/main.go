// VPIC checkpoint example: run the paper's VPIC-IO kernel on a
// simulated Summit allocation in both I/O modes and compare the
// observed aggregate bandwidth per checkpoint — the core comparison of
// the paper's Fig. 3a.
//
//	go run ./examples/vpic_checkpoint
package main

import (
	"fmt"
	"log"

	"asyncio"
	"asyncio/internal/core"
	"asyncio/internal/workloads/vpicio"
)

func main() {
	const nodes = 16
	fmt.Printf("VPIC-IO on simulated Summit, %d nodes (%d ranks), 3 checkpoints\n\n", nodes, nodes*6)

	for _, mode := range []core.Mode{core.ForceSync, core.ForceAsync} {
		clk := asyncio.NewClock()
		sys := asyncio.Summit(clk, nodes)
		rep, _, err := vpicio.Run(sys, vpicio.Config{
			Steps: 3,
			Mode:  mode,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mode=%s\n", mode)
		for _, r := range rep.Run.Records {
			fmt.Printf("  checkpoint %d: %6.1f MB/rank, io %-12v rate %8.2f GB/s\n",
				r.Epoch, float64(r.Bytes)/float64(r.Ranks)/1e6,
				r.IOTime, r.Rate()/1e9)
		}
		fmt.Printf("  total app time: %v (init %v, term %v)\n\n",
			rep.Run.TotalTime(), rep.Run.InitTime, rep.Run.TermTime)
	}

	fmt.Println("The asynchronous rate reflects the staging-copy cost only —")
	fmt.Println("the file-system write overlaps the 30 s compute phase.")
}
