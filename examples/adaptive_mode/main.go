// Adaptive-mode example: the paper motivates a transparent runtime that
// switches between synchronous and asynchronous I/O using the
// performance model (Fig. 2's feedback loop). This example runs the
// same workload twice on simulated Cori-Haswell:
//
//   - long compute phases → the model learns that async hides the I/O
//     and settles on asynchronous mode;
//
//   - compute phases shorter than the transactional overhead (the
//     Fig. 1c slowdown scenario) → the model settles on synchronous.
//
//     go run ./examples/adaptive_mode
package main

import (
	"fmt"
	"log"
	"time"

	"asyncio"
)

const bytesPerRank = 64 << 20 // 64 MB per rank per epoch

func main() {
	run("long compute phases", 20*time.Second)
	run("tiny compute phases (slowdown scenario)", 5*time.Millisecond)
}

func run(title string, compute time.Duration) {
	fmt.Printf("== %s (compute %v) ==\n", title, compute)
	clk := asyncio.NewClock()
	sys := asyncio.CoriHaswell(clk, 2) // 64 ranks

	// A minimal iterative app written directly against the system
	// models: synchronous epochs write through the Lustre target,
	// asynchronous epochs pay only the node-local staging copy.
	hooks := asyncio.Hooks{
		Compute: func(ctx *asyncio.RankCtx, iter int) error {
			ctx.P.Sleep(compute)
			return nil
		},
		IO: func(ctx *asyncio.RankCtx, iter int, mode asyncio.IOMode) (int64, error) {
			if mode == asyncio.Sync {
				ctx.Sys.PFS.WriteData(ctx.P, bytesPerRank)
			} else {
				ctx.Sys.MemcpyModel(ctx.Rank)(ctx.P, bytesPerRank)
			}
			return bytesPerRank, nil
		},
	}
	rep, err := asyncio.RunApp(sys, asyncio.RunConfig{
		Workload:   "adaptive-demo",
		Iterations: 10,
		Mode:       asyncio.Adaptive,
	}, hooks)
	if err != nil {
		log.Fatal(err)
	}

	for _, ep := range rep.Epochs {
		line := fmt.Sprintf("  epoch %d: mode=%-5s io=%-12v comp=%v",
			ep.Epoch, ep.Mode, ep.IOTime, ep.CompTime)
		if ep.EstOK {
			line += fmt.Sprintf("  [model: sync=%v async=%v → %s]",
				ep.Est.Sync.Round(time.Millisecond),
				ep.Est.Async.Round(time.Millisecond),
				ep.Est.Better())
		} else {
			line += "  [seeding model]"
		}
		fmt.Println(line)
	}
	last := rep.Epochs[len(rep.Epochs)-1]
	fmt.Printf("settled on %s I/O; total app time %v\n\n", last.Mode, rep.Run.TotalTime())
}
