// Prefetch reader example: the BD-CATS-IO pattern (§V-A2). The first
// time step's read is blocking; once the async connector starts
// prefetching the next step during the computation phase, later reads
// cost only the staging copy — the paper reports "orders of magnitude"
// higher aggregate read bandwidth.
//
//	go run ./examples/prefetch_reader
package main

import (
	"fmt"
	"log"

	"asyncio"
	"asyncio/internal/core"
	"asyncio/internal/workloads/bdcats"
)

func main() {
	const nodes = 8
	fmt.Printf("BD-CATS-IO on simulated Summit, %d nodes (%d ranks), 5 time steps\n\n", nodes, nodes*6)

	clk := asyncio.NewClock()
	sys := asyncio.Summit(clk, nodes)
	rep, err := bdcats.Run(sys, bdcats.Config{
		Steps: 5,
		Mode:  core.ForceAsync,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rep.Run.Records {
		kind := "prefetch hit (staging copy only)"
		if r.Epoch == 0 {
			kind = "cold read (blocking)"
		}
		fmt.Printf("step %d: read %5.1f GB in %-12v → %9.2f GB/s   %s\n",
			r.Epoch, float64(r.Bytes)/1e9, r.IOTime, r.Rate()/1e9, kind)
	}

	first := rep.Run.Records[0]
	last := rep.Run.Records[len(rep.Run.Records)-1]
	fmt.Printf("\nspeedup after prefetch kicks in: %.0f×\n",
		last.Rate()/first.Rate())
}
